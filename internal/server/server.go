// Package server implements the soprd network front-end: it accepts TCP
// connections, frames requests with the wire protocol, and serves them from
// one shared engine. Sessions are request/response: each connection issues
// one request at a time. The shared SynchronizedDB serializes operation
// blocks (exec requests) across connections, preserving the paper's
// single-stream model of system execution (Section 2.1) — concurrent
// writers are simply interleaved as a stream of transactions — while
// read-only requests (query, stats, dump; ping never touches the engine)
// take no lock at all: they read the engine's published MVCC snapshot, so
// independent connections issuing reads execute concurrently with each
// other and with a running writer, and scale across cores instead of
// queueing behind one mutex (experiments S2 and S3 measure this).
//
// Robustness against slow or broken peers: every read of a request frame and
// every write of a response runs under a deadline, frames beyond the
// configured maximum are rejected before their payload is read, and framing
// errors close the connection (the stream cannot be trusted afterwards).
// Shutdown stops accepting, closes idle connections, and drains requests
// that are already executing before returning.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sopr"
	"sopr/internal/repl"
	"sopr/internal/wire"
)

// DB is the backend a Server serves from: a primary's SynchronizedDB or a
// replica's repl.Follower. Exec lands on the backend's exclusive write
// path (one operation-block stream, per the paper's Section 2.1); Query,
// Dump, and Stats are read-only.
type DB interface {
	Exec(src string) (*sopr.Result, error)
	Query(src string) (*sopr.Rows, error)
	Dump(w io.Writer) error
	Stats() sopr.Stats
}

// Optional backend capabilities, discovered by interface assertion:
//
// BatchExecer lets a backend run a list of data-manipulation statements as
// one operation block (one engine pass, one commit record, one shared
// fsync). SynchronizedDB and repl.Primary implement it; a backend without
// it serves MsgExecBatch by joining the statements into one script — still
// a single block, just via the script path. Read-only followers reject
// either way with their typed read_only error.
type BatchExecer interface {
	ExecBatch(stmts []string) (*sopr.Result, error)
}

// CurrentLSNer lets the server attach the durable LSN to exec responses —
// the read-your-writes token clients carry to replica reads.
type CurrentLSNer interface {
	CurrentLSN() uint64
}

// LSNWaiter lets a replica backend hold a query until it has applied the
// client's MinLSN (or report repl.LagError when it cannot in time).
type LSNWaiter interface {
	WaitForLSN(lsn uint64, timeout time.Duration) error
}

// Promoter lets a backend be promoted to accept writes in a new epoch
// (MsgReplPromote, sent by clients failing over from a dead primary). It
// returns the epoch actually opened: at least the requested one, and
// always above every epoch the node has seen.
type Promoter interface {
	Promote(epoch uint64) (uint64, error)
}

// Epocher lets the server run the epoch gate: requests carrying an epoch
// older than the node's answer CodeStaleEpoch, and a request revealing a
// newer epoch fences a stale leader before the request executes.
type Epocher interface {
	Epoch() uint64
	ObserveEpoch(epoch uint64)
}

// FollowerBackend lets a backend be pointed at (or demoted under) a
// leader for a given epoch (MsgReplFollow): a replica re-points its
// stream, a primary demotes itself into a follower of the new leader.
type FollowerBackend interface {
	Follow(leader string, epoch uint64) error
}

// ReplSourcer lets a backend serve WAL stream sessions (MsgReplJoin) from
// its own source — a primary always, a durable follower too, which is
// what lets siblings re-point to a promoted follower. It takes precedence
// over Config.Repl.
type ReplSourcer interface {
	ReplSource() *repl.Source
}

// ReplStatser lets a backend report its replication position; backends
// without it fall back to Config.Repl's source stats.
type ReplStatser interface {
	ReplStats() *wire.ReplStats
}

// Config tunes a Server. Zero values select the defaults.
type Config struct {
	// MaxFrame caps request and response payload sizes (default
	// wire.DefaultMaxFrame).
	MaxFrame int
	// ReadTimeout bounds the wait for the next request frame on an open
	// connection; a client idle longer is disconnected (default 5m).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response (default 30s).
	WriteTimeout time.Duration
	// Repl, when set, serves WAL stream sessions (MsgReplJoin) from this
	// source — set on a durable primary, nil elsewhere.
	Repl *repl.Source
	// ReplWaitTimeout bounds how long a replica holds a query waiting for
	// the client's MinLSN before answering CodeLagging (default 5s).
	ReplWaitTimeout time.Duration
	// Logf, when set, receives one line per connection-level event.
	Logf func(format string, args ...any)
}

const (
	defaultReadTimeout  = 5 * time.Minute
	defaultWriteTimeout = 30 * time.Second
	defaultReplWait     = 5 * time.Second
)

// ErrServerClosed is returned by Serve after Shutdown completes.
var ErrServerClosed = errors.New("server: closed")

// Server serves the wire protocol from one shared database.
type Server struct {
	db  DB
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool

	wg sync.WaitGroup // one per live connection goroutine

	accepted    atomic.Int64
	active      atomic.Int64
	execs       atomic.Int64
	batchExecs  atomic.Int64
	queries     atomic.Int64
	dumps       atomic.Int64
	statsReqs   atomic.Int64
	pings       atomic.Int64
	errorsSent  atomic.Int64
	badFrames   atomic.Int64
	inFlight    atomic.Int64
	drainedReqs atomic.Int64
}

// conn is one client session. busy and cut are guarded by Server.mu.
type conn struct {
	nc   net.Conn
	busy bool // processing a request
	cut  bool // socket closed by Shutdown; drop anything half-read
}

// New builds a Server over a shared database. The database may be used by
// other goroutines too; the server adds no ordering beyond the wrapper's.
func New(db DB, cfg Config) *Server {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = defaultReadTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = defaultWriteTimeout
	}
	if cfg.ReplWaitTimeout <= 0 {
		cfg.ReplWaitTimeout = defaultReplWait
	}
	return &Server{db: db, cfg: cfg, conns: map[*conn]struct{}{}}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Listen starts listening on addr (host:port; port 0 picks a free one).
// Use the returned listener with Serve; its Addr reports the bound address.
func Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error: ErrServerClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		c := &conn{nc: nc}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			_ = nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		go s.serveConn(c)
	}
}

// Shutdown stops accepting connections, disconnects idle sessions, and
// waits for requests already executing to complete and be answered (each is
// counted in DrainedReqs). It returns ctx's error if the drain does not
// finish in time, after force-closing the stragglers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for c := range s.conns {
		if !c.busy {
			c.cut = true
			c.nc.Close() // unblocks the pending frame read
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			_ = c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the front-end's own counters (the engine's counters come
// from the shared database).
func (s *Server) Stats() wire.ServerStats {
	return wire.ServerStats{
		Accepted:    s.accepted.Load(),
		Active:      s.active.Load(),
		Execs:       s.execs.Load(),
		BatchExecs:  s.batchExecs.Load(),
		Queries:     s.queries.Load(),
		Dumps:       s.dumps.Load(),
		StatsReqs:   s.statsReqs.Load(),
		Pings:       s.pings.Load(),
		Errors:      s.errorsSent.Load(),
		BadFrames:   s.badFrames.Load(),
		InFlight:    s.inFlight.Load(),
		DrainedReqs: s.drainedReqs.Load(),
	}
}

// beginRequest marks c busy so Shutdown will drain rather than cut it.
// It reports false when the connection was already closed by Shutdown.
func (s *Server) beginRequest(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.cut {
		return false
	}
	c.busy = true
	return true
}

// endRequest marks c idle again; it reports whether the server is draining,
// in which case the session must end.
func (s *Server) endRequest(c *conn) (draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.busy = false
	return s.draining
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	_ = c.nc.Close()
	s.active.Add(-1)
	s.wg.Done()
}

func (s *Server) serveConn(c *conn) {
	defer s.removeConn(c)
	peer := c.nc.RemoteAddr()
	s.logf("conn %v: open", peer)
	for {
		// A failed deadline set means the connection is already dead (or
		// closing); without a deadline the next read could block forever,
		// so tear the session down instead.
		if err := c.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			s.logf("conn %v: set read deadline: %v", peer, err)
			return
		}
		typ, payload, err := wire.ReadFrame(c.nc, s.cfg.MaxFrame)
		if err != nil {
			switch {
			case err == io.EOF:
				s.logf("conn %v: closed by peer", peer)
			case errors.Is(err, wire.ErrFrameTooLarge):
				// The oversized payload is still in the stream, but its
				// declared length is known, so the session is recoverable:
				// drain exactly that many bytes (still under the read
				// deadline set above), answer the typed frame_too_large
				// error, and resynchronize on the next frame boundary. The
				// client can split the request — an oversized batch, say —
				// and resend on the same connection.
				s.badFrames.Add(1)
				var fse *wire.FrameSizeError
				if errors.As(err, &fse) {
					if _, derr := io.CopyN(io.Discard, c.nc, int64(fse.Declared)); derr == nil {
						s.logf("conn %v: drained oversized %s frame (%d bytes)", peer, wire.TypeName(typ), fse.Declared)
						if s.writeError(c, wire.ErrorResponse{Code: wire.CodeFrameTooLarge, Message: err.Error()}) {
							continue
						}
						return
					}
				}
				// No declared length or the drain failed: the stream cannot
				// be trusted; tell the client why, then cut the connection.
				s.writeError(c, wire.ErrorResponse{Code: wire.CodeTooLarge, Message: err.Error()})
				s.logf("conn %v: %v", peer, err)
			case errors.Is(err, net.ErrClosed):
				s.logf("conn %v: closed during shutdown", peer)
			default:
				s.badFrames.Add(1)
				s.logf("conn %v: read: %v", peer, err)
			}
			return
		}
		if typ == wire.MsgReplJoin {
			// A stream session is long-lived and deliberately never marked
			// busy: Shutdown cuts stream connections instead of draining
			// them, and the follower reconnects to the next primary.
			s.handleReplJoin(c, payload)
			return
		}
		if !s.beginRequest(c) {
			return // shutdown cut the session between frames
		}
		s.inFlight.Add(1)
		ok := s.handle(c, typ, payload)
		s.inFlight.Add(-1)
		draining := s.endRequest(c)
		if draining {
			s.drainedReqs.Add(1)
		}
		if !ok || draining {
			return
		}
	}
}

// handle dispatches one request and writes its response; it reports whether
// the connection is still usable. Locking is delegated to the shared
// SynchronizedDB: MsgExec lands on its exclusive lock (one operation-block
// stream, per the paper's Section 2.1), while MsgQuery, MsgStats, and
// MsgDump land on its shared lock, so read requests from different
// connections run concurrently.
func (s *Server) handle(c *conn, typ byte, payload []byte) bool {
	switch typ {
	case wire.MsgPing:
		s.pings.Add(1)
		return s.write(c, wire.MsgPong, nil)

	case wire.MsgExec:
		s.execs.Add(1)
		var req wire.ExecRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			s.badFrames.Add(1)
			return s.writeError(c, wire.ErrorResponse{Code: wire.CodeBadFrame, Message: err.Error()})
		}
		if proceed, alive := s.gateEpoch(c, req.Epoch); !proceed {
			return alive
		}
		res, err := s.db.Exec(req.Src)
		if err != nil {
			return s.writeError(c, execError(err))
		}
		return s.writeExecResult(c, wire.MsgExecResult, res)

	case wire.MsgExecBatch:
		s.batchExecs.Add(1)
		var req wire.ExecBatchRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			s.badFrames.Add(1)
			return s.writeError(c, wire.ErrorResponse{Code: wire.CodeBadFrame, Message: err.Error()})
		}
		if proceed, alive := s.gateEpoch(c, req.Epoch); !proceed {
			return alive
		}
		var res *sopr.Result
		var err error
		if be, ok := s.db.(BatchExecer); ok {
			res, err = be.ExecBatch(req.Stmts)
		} else {
			// Joining the statements into one script is semantically the
			// same single operation block — just without the batch entry
			// point's cheaper path.
			res, err = s.db.Exec(strings.Join(req.Stmts, ";\n"))
		}
		if err != nil {
			return s.writeError(c, execError(err))
		}
		return s.writeExecResult(c, wire.MsgExecBatchResult, res)

	case wire.MsgQuery:
		s.queries.Add(1)
		var req wire.QueryRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			s.badFrames.Add(1)
			return s.writeError(c, wire.ErrorResponse{Code: wire.CodeBadFrame, Message: err.Error()})
		}
		if req.MinLSN > 0 {
			// Read-your-writes: hold the read until the backend has applied
			// the client's token. Backends without the capability (a primary)
			// serve current state — the primary is the source of truth.
			if w, ok := s.db.(LSNWaiter); ok {
				if err := w.WaitForLSN(req.MinLSN, s.cfg.ReplWaitTimeout); err != nil {
					return s.writeError(c, execError(err))
				}
			}
		}
		rows, err := s.db.Query(req.Src)
		if err != nil {
			return s.writeError(c, execError(err))
		}
		wrows, err := wire.RowsOf(rows.Columns, rows.Data)
		if err != nil {
			return s.writeError(c, wire.ErrorResponse{Code: wire.CodeInternal, Message: err.Error()})
		}
		return s.write(c, wire.MsgQueryResult, wrows)

	case wire.MsgDump:
		s.dumps.Add(1)
		var b strings.Builder
		if err := s.db.Dump(&b); err != nil {
			return s.writeError(c, wire.ErrorResponse{Code: wire.CodeInternal, Message: err.Error()})
		}
		return s.write(c, wire.MsgDumpResult, wire.DumpResponse{Script: b.String()})

	case wire.MsgReplPromote:
		p, ok := s.db.(Promoter)
		if !ok {
			return s.writeError(c, wire.ErrorResponse{
				Code:    wire.CodeExec,
				Message: "this node cannot be promoted",
			})
		}
		// An empty payload is a legacy promote with no target epoch; the
		// node still opens one above everything it has seen.
		var req wire.ReplPromoteRequest
		if len(payload) > 0 {
			if err := wire.Unmarshal(payload, &req); err != nil {
				s.badFrames.Add(1)
				return s.writeError(c, wire.ErrorResponse{Code: wire.CodeBadFrame, Message: err.Error()})
			}
		}
		epoch, err := p.Promote(req.Epoch)
		if err != nil {
			return s.writeError(c, execError(err))
		}
		resp := &wire.ReplPromotedResponse{Epoch: epoch}
		if ln, ok := s.db.(CurrentLSNer); ok {
			resp.LSN = ln.CurrentLSN()
		}
		s.logf("conn %v: promoted to accept writes at epoch %d", c.nc.RemoteAddr(), epoch)
		return s.write(c, wire.MsgReplPromoted, resp)

	case wire.MsgReplFollow:
		f, ok := s.db.(FollowerBackend)
		if !ok {
			return s.writeError(c, wire.ErrorResponse{
				Code:    wire.CodeExec,
				Message: "this node cannot follow a leader",
			})
		}
		var req wire.ReplFollowRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			s.badFrames.Add(1)
			return s.writeError(c, wire.ErrorResponse{Code: wire.CodeBadFrame, Message: err.Error()})
		}
		if err := f.Follow(req.Leader, req.Epoch); err != nil {
			return s.writeError(c, execError(err))
		}
		s.logf("conn %v: following %s at epoch %d", c.nc.RemoteAddr(), req.Leader, req.Epoch)
		return s.write(c, wire.MsgReplFollowed, &wire.ReplFollowedResponse{Epoch: req.Epoch})

	case wire.MsgStats:
		s.statsReqs.Add(1)
		es := s.db.Stats()
		var rs *wire.ReplStats
		if r, ok := s.db.(ReplStatser); ok {
			rs = r.ReplStats()
		} else if s.cfg.Repl != nil {
			rs = s.cfg.Repl.Stats()
		}
		return s.write(c, wire.MsgStatsResult, wire.StatsResponse{
			Repl: rs,
			Engine: wire.EngineStats{
				Committed:           es.Committed,
				RolledBack:          es.RolledBack,
				ExternalTransitions: es.ExternalTransitions,
				RuleConsiderations:  es.RuleConsiderations,
				RuleFirings:         es.RuleFirings,
				IndexLookups:        es.IndexLookups,
				HeapScans:           es.HeapScans,
				WALAppends:          es.WALAppends,
				WALBytes:            es.WALBytes,
				RecoveredRecords:    es.RecoveredRecords,
				Checkpoints:         es.Checkpoints,
				GroupCommits:        es.GroupCommits,
				GroupedTxns:         es.GroupedTxns,
				PlannedQueries:      es.PlannedQueries,
				PlanProbeFallbacks:  es.PlanProbeFallbacks,
			},
			Server: s.Stats(),
		})

	default:
		s.badFrames.Add(1)
		return s.writeError(c, wire.ErrorResponse{
			Code:    wire.CodeBadFrame,
			Message: fmt.Sprintf("unknown request type %s", wire.TypeName(typ)),
		})
	}
}

// gateEpoch runs the epoch gate for a write request: a request from a
// cluster view older than this node's is refused outright (the client must
// re-probe), and a request revealing a newer epoch fences a stale leader
// before anything executes — its Exec then answers the typed fenced error
// instead of extending a dead history. proceed reports whether the request
// may execute; when it may not, alive reports whether the connection is
// still usable.
func (s *Server) gateEpoch(c *conn, reqEpoch uint64) (proceed, alive bool) {
	if reqEpoch == 0 {
		return true, true
	}
	ep, ok := s.db.(Epocher)
	if !ok {
		return true, true
	}
	if cur := ep.Epoch(); reqEpoch < cur {
		return false, s.writeError(c, wire.ErrorResponse{
			Code:    wire.CodeStaleEpoch,
			Epoch:   cur,
			Message: fmt.Sprintf("request epoch %d is older than node epoch %d", reqEpoch, cur),
		})
	} else if reqEpoch > cur {
		ep.ObserveEpoch(reqEpoch)
	}
	return true, true
}

// writeExecResult converts res for the wire, stamps the LSN token, epoch
// and sync flag, and writes it as typ.
func (s *Server) writeExecResult(c *conn, typ byte, res *sopr.Result) bool {
	resp, err := execResponse(res)
	if err != nil {
		return s.writeError(c, wire.ErrorResponse{Code: wire.CodeInternal, Message: err.Error()})
	}
	if ln, ok := s.db.(CurrentLSNer); ok {
		resp.LSN = ln.CurrentLSN()
	}
	if ep, ok := s.db.(Epocher); ok {
		resp.Epoch = ep.Epoch()
	}
	if res != nil {
		resp.Synced = res.Synced
	}
	return s.write(c, typ, resp)
}

// handleReplJoin turns the connection into a WAL stream session. It
// returns when the stream ends; the caller closes the connection.
func (s *Server) handleReplJoin(c *conn, payload []byte) {
	peer := c.nc.RemoteAddr()
	var req wire.ReplJoinRequest
	if err := wire.Unmarshal(payload, &req); err != nil {
		s.badFrames.Add(1)
		s.writeError(c, wire.ErrorResponse{Code: wire.CodeBadFrame, Message: err.Error()})
		return
	}
	src := s.cfg.Repl
	if rs, ok := s.db.(ReplSourcer); ok {
		if bs := rs.ReplSource(); bs != nil {
			src = bs
		}
	}
	if src == nil {
		s.writeError(c, wire.ErrorResponse{
			Code:    wire.CodeNotPrimary,
			Message: "this server does not ship a WAL (in-memory, or an in-memory replica)",
		})
		return
	}
	// The stream manages its own deadlines from here; clear the
	// request-cycle read deadline set by serveConn.
	if err := c.nc.SetReadDeadline(time.Time{}); err != nil {
		s.logf("conn %v: clear read deadline: %v", peer, err)
		return
	}
	s.logf("conn %v: repl stream join from lsn %d (epoch %d)", peer, req.FromLSN, req.Epoch)
	if err := src.ServeConn(c.nc, req); err != nil && !errors.Is(err, net.ErrClosed) {
		s.logf("conn %v: repl stream end: %v", peer, err)
	}
}

// execError classifies a script failure, attaching the line for parse errors.
func execError(err error) wire.ErrorResponse {
	var pe *sopr.ParseError
	if errors.As(err, &pe) {
		return wire.ErrorResponse{Code: wire.CodeParse, Message: err.Error(), Line: pe.Line}
	}
	if errors.Is(err, repl.ErrReadOnly) {
		return wire.ErrorResponse{Code: wire.CodeReadOnly, Message: err.Error()}
	}
	var le *repl.LagError
	if errors.As(err, &le) {
		return wire.ErrorResponse{Code: wire.CodeLagging, Message: err.Error()}
	}
	var fe *repl.FencedError
	if errors.As(err, &fe) {
		return wire.ErrorResponse{Code: wire.CodeFenced, Epoch: fe.Epoch, Message: err.Error()}
	}
	var se *repl.StaleEpochError
	if errors.As(err, &se) {
		return wire.ErrorResponse{Code: wire.CodeStaleEpoch, Epoch: se.Epoch, Message: err.Error()}
	}
	return wire.ErrorResponse{Code: wire.CodeExec, Message: err.Error()}
}

// execResponse converts a sopr.Result for the wire.
func execResponse(res *sopr.Result) (wire.ExecResponse, error) {
	out := wire.ExecResponse{RolledBack: res.RolledBack, RollbackRule: res.RollbackRule}
	for _, f := range res.Firings {
		out.Firings = append(out.Firings, wire.Firing{Rule: f.Rule, Effect: f.Effect})
	}
	for _, q := range res.Results {
		rows, err := wire.RowsOf(q.Columns, q.Data)
		if err != nil {
			return wire.ExecResponse{}, err
		}
		out.Results = append(out.Results, rows)
	}
	return out, nil
}

func (s *Server) writeError(c *conn, er wire.ErrorResponse) bool {
	s.errorsSent.Add(1)
	return s.write(c, wire.MsgError, er)
}

func (s *Server) write(c *conn, typ byte, v any) bool {
	// As in serveConn: a connection that cannot take a deadline cannot be
	// written with bounded blocking, so report the session unusable.
	if err := c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
		s.logf("conn %v: set write deadline: %v", c.nc.RemoteAddr(), err)
		return false
	}
	if err := wire.WriteMessage(c.nc, typ, v, s.cfg.MaxFrame); err != nil {
		s.logf("conn %v: write %s: %v", c.nc.RemoteAddr(), wire.TypeName(typ), err)
		return false
	}
	return true
}
