package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"sopr"
	"sopr/client"
	"sopr/internal/wire"
)

// startServer launches a server over db on a random port and returns it
// with its address. The server is shut down at test end if the test didn't.
func startServer(t *testing.T, db *sopr.SynchronizedDB, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(db, cfg)
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestConcurrentCascade runs Example 4.3's recursive manager-cascade rule
// through the client package from 8 goroutines at once (the -race build is
// the point of this test). Each client owns a disjoint key range, so every
// interleaving of the serialized transactions must cascade each client's
// chain fully.
func TestConcurrentCascade(t *testing.T) {
	db := sopr.Open()
	db.MustExec(`
		create table emp (name varchar, emp_no int, salary float, dept_no int);
		create table dept (dept_no int, mgr_no int)`)
	db.MustExec(`
		create rule mgr_cascade when deleted from emp
		then delete from emp where dept_no in
		     (select dept_no from dept where mgr_no in (select emp_no from deleted emp));
		     delete from dept where mgr_no in (select emp_no from deleted emp)
		end`)
	_, addr := startServer(t, sopr.Synchronized(db), Config{})

	const clients = 8
	const depth = 4
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			var emps, depts strings.Builder
			fmt.Fprintf(&emps, "insert into emp values ('m%d', %d, 0, %d)", base+1, base+1, base)
			depts.WriteString("insert into dept values ")
			for d := 1; d <= depth; d++ {
				fmt.Fprintf(&depts, "(%d, %d)", base+d, base+d)
				if d < depth {
					depts.WriteString(", ")
				}
				fmt.Fprintf(&emps, ", ('m%d', %d, 0, %d)", base+d+1, base+d+1, base+d)
			}
			if _, err := c.Exec(emps.String()); err != nil {
				errc <- err
				return
			}
			if _, err := c.Exec(depts.String()); err != nil {
				errc <- err
				return
			}
			res, err := c.Exec(fmt.Sprintf(`delete from emp where emp_no = %d`, base+1))
			if err != nil {
				errc <- err
				return
			}
			// One firing per chain level plus the empty fixpoint firing.
			if len(res.Firings) < depth {
				errc <- fmt.Errorf("client %d: only %d firings", base, len(res.Firings))
				return
			}
			rows, err := c.Query(fmt.Sprintf(
				`select count(*) from emp where emp_no >= %d and emp_no <= %d`, base, base+depth+1))
			if err != nil {
				errc <- err
				return
			}
			if n := rows.Data[0][0].(int64); n != 0 {
				errc <- fmt.Errorf("client %d: %d employees survived the cascade", base, n)
			}
		}(1000 * (i + 1))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	c := dial(t, addr)
	rows, err := c.Query(`select count(*) from emp`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].(int64); n != 0 {
		t.Errorf("%d employees left in total", n)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.RuleFirings < clients*depth {
		t.Errorf("engine counted %d firings, want >= %d", st.Engine.RuleFirings, clients*depth)
	}
	if st.Server.Execs < clients*3 {
		t.Errorf("server counted %d execs, want >= %d", st.Server.Execs, clients*3)
	}
}

// TestShutdownDrainsInFlight starts a deliberately slow transaction (a rule
// action calls a sleeping external procedure), shuts the server down while
// it runs, and checks the client still receives its full response.
func TestShutdownDrainsInFlight(t *testing.T) {
	db := sopr.Open()
	started := make(chan struct{}, 1)
	db.RegisterProcedure("slow", func(*sopr.ProcContext) error {
		started <- struct{}{}
		time.Sleep(300 * time.Millisecond)
		return nil
	})
	db.MustExec(`create table t (a int)`)
	db.MustExec(`create rule r when inserted into t then call slow end`)
	srv := New(sopr.Synchronized(db), Config{})
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	busy, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	idle, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if err := idle.Ping(); err != nil { // make sure the session is established
		t.Fatal(err)
	}

	type execResult struct {
		res *sopr.Result
		err error
	}
	resc := make(chan execResult, 1)
	go func() {
		res, err := busy.Exec(`insert into t values (1)`)
		resc <- execResult{res, err}
	}()
	<-started // the slow transaction is now in flight

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	t0 := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if waited := time.Since(t0); waited < 100*time.Millisecond {
		t.Errorf("Shutdown returned after %v; it should have waited for the drain", waited)
	}
	if err := <-serveDone; err != ErrServerClosed {
		t.Errorf("Serve returned %v", err)
	}

	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight exec failed: %v", r.err)
	}
	if len(r.res.Firings) != 1 || r.res.Firings[0].Rule != "r" {
		t.Errorf("in-flight exec lost its firings: %+v", r.res)
	}
	if st := srv.Stats(); st.DrainedReqs < 1 {
		t.Errorf("DrainedReqs = %d, want >= 1", st.DrainedReqs)
	}

	// The idle session was cut and the listener is gone.
	if err := idle.Ping(); err == nil {
		t.Error("ping on the cut idle session succeeded")
	}
	if c, err := client.Dial(addr); err == nil {
		if err := c.Ping(); err == nil {
			t.Error("server still answering after shutdown")
		}
		c.Close()
	}
}

func TestErrorResponses(t *testing.T) {
	db := sopr.Open()
	db.MustExec(`create table t (a int)`)
	_, addr := startServer(t, sopr.Synchronized(db), Config{})
	c := dial(t, addr)

	// Parse errors carry the failing line.
	_, err := c.Exec("insert into t values (1);\nnot sql at all;")
	var re *client.RemoteError
	if !errors.As(err, &re) || re.Code != client.CodeParse {
		t.Fatalf("err = %v, want remote parse error", err)
	}
	if re.Line != 2 {
		t.Errorf("parse error line = %d, want 2", re.Line)
	}

	// Execution errors are code "exec" without a line.
	_, err = c.Query(`select * from nosuch`)
	if !client.IsRemote(err, client.CodeExec) {
		t.Fatalf("err = %v, want remote exec error", err)
	}

	// The session survives failed requests.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after errors: %v", err)
	}
}

// TestRawFrameAbuse speaks the protocol by hand: unknown message types and
// oversized frames both get an error response on a still-usable session —
// the server drains an oversized frame's declared payload and
// resynchronizes on the next frame boundary.
func TestRawFrameAbuse(t *testing.T) {
	db := sopr.Open()
	_, addr := startServer(t, sopr.Synchronized(db), Config{MaxFrame: 4096})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Unknown type: error response, session continues.
	if err := wire.WriteFrame(nc, 0x7e, []byte("junk"), 0); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(nc, 0)
	if err != nil || typ != wire.MsgError {
		t.Fatalf("unknown type: got %s err %v", wire.TypeName(typ), err)
	}
	var er wire.ErrorResponse
	if err := wire.Unmarshal(payload, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != wire.CodeBadFrame {
		t.Errorf("code = %q, want bad_frame", er.Code)
	}
	if err := wire.WriteFrame(nc, wire.MsgPing, nil, 0); err != nil {
		t.Fatal(err)
	}
	if typ, _, err = wire.ReadFrame(nc, 0); err != nil || typ != wire.MsgPong {
		t.Fatalf("ping after bad frame: got %s err %v", wire.TypeName(typ), err)
	}

	// Undecodable payload: error response, session continues.
	if err := wire.WriteFrame(nc, wire.MsgExec, []byte("{broken"), 0); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = wire.ReadFrame(nc, 0)
	if err != nil || typ != wire.MsgError {
		t.Fatalf("broken payload: got %s err %v", wire.TypeName(typ), err)
	}
	if err := wire.Unmarshal(payload, &er); err != nil || er.Code != wire.CodeBadFrame {
		t.Fatalf("code = %q err %v, want bad_frame", er.Code, err)
	}

	// Oversized frame: frame_too_large error, payload drained, session
	// continues — the next request on the same connection is served.
	if err := wire.WriteFrame(nc, wire.MsgExec, make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = wire.ReadFrame(nc, 0)
	if err != nil || typ != wire.MsgError {
		t.Fatalf("oversized: got %s err %v", wire.TypeName(typ), err)
	}
	if err := wire.Unmarshal(payload, &er); err != nil || er.Code != wire.CodeFrameTooLarge {
		t.Fatalf("code = %q err %v, want frame_too_large", er.Code, err)
	}
	if err := wire.WriteFrame(nc, wire.MsgPing, nil, 0); err != nil {
		t.Fatal(err)
	}
	if typ, _, err = wire.ReadFrame(nc, 0); err != nil || typ != wire.MsgPong {
		t.Fatalf("ping after oversized frame: got %s err %v", wire.TypeName(typ), err)
	}
}

func TestDumpAndRoundTripValues(t *testing.T) {
	db := sopr.Open()
	db.MustExec(`create table v (i int, f float, s varchar, b bool)`)
	db.MustExec(`insert into v values (42, 1.5, 'it''s', true), (null, null, null, null)`)
	_, addr := startServer(t, sopr.Synchronized(db), Config{})
	c := dial(t, addr)

	rows, err := c.Query(`select i, f, s, b from v where i = 42`)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{int64(42), 1.5, "it's", true}
	for j, w := range want {
		if rows.Data[0][j] != w {
			t.Errorf("cell %d = %#v, want %#v", j, rows.Data[0][j], w)
		}
	}
	rows, err = c.Query(`select i from v where i is null`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != nil {
		t.Errorf("null cell = %#v", rows.Data[0][0])
	}
	// The remote rendering matches the local engine's.
	local := db.MustQuery(`select i, f, s, b from v where i = 42`)
	remote, err := c.Query(`select i, f, s, b from v where i = 42`)
	if err != nil {
		t.Fatal(err)
	}
	if remote.String() != local.String() {
		t.Errorf("rendering differs:\nremote:\n%s\nlocal:\n%s", remote, local)
	}

	script, err := c.Dump()
	if err != nil {
		t.Fatal(err)
	}
	db2 := sopr.Open()
	if err := db2.LoadString(script); err != nil {
		t.Fatalf("reloading remote dump: %v", err)
	}
	if n := db2.MustQuery(`select count(*) from v`).Data[0][0].(int64); n != 2 {
		t.Errorf("reloaded %d rows, want 2", n)
	}
}
