// Package sqlast defines the abstract syntax tree for the SQL dialect of
// the paper: the data manipulation operations of Section 2.1 (insert,
// delete, update, select with arbitrarily complex predicates and embedded
// selects), the rule definition language of Section 3 (CREATE RULE with
// transition predicates, conditions, actions, and transition-table
// references), and the priority declarations of Section 4.4.
//
// Every node renders back to SQL via String; the printer output re-parses
// to an equal tree (round-trip property, tested in sqlparse).
package sqlast

import (
	"sopr/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmtNode()
	String() string
}

// Expr is any scalar or predicate expression.
type Expr interface {
	exprNode()
	String() string
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

// ColumnRef names a column, optionally qualified by a table name or alias
// (e.g. e1.dept_no).
type ColumnRef struct {
	Qualifier string // "" if unqualified
	Column    string
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators, in precedence groups.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

// Binary is a binary operation L op R.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	OpNeg UnaryOp = iota // arithmetic -
	OpNot                // logical NOT
)

// Unary is a unary operation.
type Unary struct {
	Op UnaryOp
	X  Expr
}

// IsNull is `X IS [NOT] NULL`.
type IsNull struct {
	X      Expr
	Negate bool
}

// InList is `X [NOT] IN (e1, e2, ...)`.
type InList struct {
	X      Expr
	List   []Expr
	Negate bool
}

// InSelect is `X [NOT] IN (select ...)`.
type InSelect struct {
	X      Expr
	Sub    *Select
	Negate bool
}

// Exists is `[NOT] EXISTS (select ...)`.
type Exists struct {
	Sub    *Select
	Negate bool
}

// ScalarSub is an embedded select used as a scalar value, e.g.
// `(select sum(salary) from emp)`.
type ScalarSub struct {
	Sub *Select
}

// Quant is the quantifier of a quantified subquery comparison.
type Quant int

// Quantifiers.
const (
	QuantAny Quant = iota // ANY / SOME
	QuantAll
)

// SubCompare is `X op ANY|ALL (select ...)`.
type SubCompare struct {
	X     Expr
	Op    BinOp // comparison operator only
	Quant Quant
	Sub   *Select
}

// Between is `X [NOT] BETWEEN Lo AND Hi`.
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

// Like is `X [NOT] LIKE pattern`.
type Like struct {
	X, Pattern Expr
	Negate     bool
}

// FuncCall is a function application. Aggregates (count, sum, avg, min,
// max) are FuncCalls resolved by the executor; Star marks count(*).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // count(*)
	Distinct bool // count(distinct x), sum(distinct x), ...
}

// When is one WHEN/THEN arm of a CASE expression.
type When struct {
	Cond   Expr // condition (searched CASE) or comparison value (simple CASE)
	Result Expr
}

// Case is `CASE [operand] WHEN ... THEN ... [ELSE ...] END`. With an
// Operand it is a simple CASE (operand = when-value comparisons); without,
// a searched CASE (boolean conditions).
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr // nil means ELSE NULL
}

func (*Literal) exprNode()    {}
func (*ColumnRef) exprNode()  {}
func (*Binary) exprNode()     {}
func (*Unary) exprNode()      {}
func (*IsNull) exprNode()     {}
func (*InList) exprNode()     {}
func (*InSelect) exprNode()   {}
func (*Exists) exprNode()     {}
func (*ScalarSub) exprNode()  {}
func (*SubCompare) exprNode() {}
func (*Between) exprNode()    {}
func (*Like) exprNode()       {}
func (*FuncCall) exprNode()   {}
func (*Case) exprNode()       {}

// ---------------------------------------------------------------------------
// Table references and SELECT
// ---------------------------------------------------------------------------

// TransKind identifies a transition table (Section 3 of the paper).
type TransKind int

// Transition table kinds. TransNone marks an ordinary base table.
const (
	TransNone TransKind = iota
	TransInserted
	TransDeleted
	TransOldUpdated
	TransNewUpdated
	TransSelected // Section 5.1 extension
)

// TableRef is an entry in a FROM list: either a base table or one of the
// paper's transition tables (`inserted t`, `deleted t`,
// `old updated t[.c]`, `new updated t[.c]`), optionally aliased.
type TableRef struct {
	Trans  TransKind
	Table  string
	Column string // for `updated t.c` transition tables; "" otherwise
	Alias  string // "" if none
}

// Binding returns the name this reference is known by in the enclosing
// query: the alias if present, else the table name.
func (tr *TableRef) Binding() string {
	if tr.Alias != "" {
		return tr.Alias
	}
	return tr.Table
}

// SelectItem is one projection item: `*`, `q.*`, or an expression with an
// optional alias.
type SelectItem struct {
	Star      bool
	Qualifier string // for q.*
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a query block.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []*TableRef
	Where    Expr // nil means WHERE TRUE (paper: "if the predicate is omitted ... where true")
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil means no LIMIT; must evaluate to a non-negative integer
}

func (*Select) stmtNode() {}

// Explain is `EXPLAIN <statement>`: render the executor's chosen plan
// (access paths, join order, cost estimates) for a SELECT or DML statement
// without executing it.
type Explain struct {
	Stmt Statement
}

func (*Explain) stmtNode() {}

// ---------------------------------------------------------------------------
// DML statements (the operations of an operation block, Section 2.1)
// ---------------------------------------------------------------------------

// Insert is `INSERT INTO t [(cols)] VALUES (...), ...` or
// `INSERT INTO t [(cols)] (select ...)`.
type Insert struct {
	Table   string
	Columns []string // nil means schema order
	Rows    [][]Expr // value-form; nil when Query is set
	Query   *Select  // select-form; nil when Rows is set
}

// Delete is `DELETE FROM t [WHERE p]`.
type Delete struct {
	Table string
	Alias string
	Where Expr
}

// Assignment is one `col = expr` of an UPDATE SET list.
type Assignment struct {
	Column string
	Expr   Expr
}

// Update is `UPDATE t SET c = e, ... [WHERE p]`.
type Update struct {
	Table string
	Alias string
	Set   []Assignment
	Where Expr
}

func (*Insert) stmtNode() {}
func (*Delete) stmtNode() {}
func (*Update) stmtNode() {}

// ---------------------------------------------------------------------------
// DDL statements
// ---------------------------------------------------------------------------

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    value.Kind
	NotNull bool
}

// CreateTable is `CREATE TABLE t (col type [NOT NULL], ...)`.
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

// DropTable is `DROP TABLE t`.
type DropTable struct {
	Name string
}

// CreateIndex is `CREATE INDEX name ON table (column)`: a secondary hash
// index accelerating equality selections on the column (see
// internal/storage).
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

// DropIndex is `DROP INDEX name`.
type DropIndex struct {
	Name string
}

func (*CreateIndex) stmtNode() {}
func (*DropIndex) stmtNode()   {}

func (*CreateTable) stmtNode() {}
func (*DropTable) stmtNode()   {}

// ---------------------------------------------------------------------------
// Rule statements (Sections 3, 4.4, 5)
// ---------------------------------------------------------------------------

// TransPredOp is the operation a basic transition predicate watches.
type TransPredOp int

// Basic transition predicate operations.
const (
	PredInserted TransPredOp = iota // inserted into t
	PredDeleted                     // deleted from t
	PredUpdated                     // updated t  /  updated t.c
	PredSelected                    // selected t / selected t.c (Section 5.1)
)

// TransPred is one basic transition predicate. A rule's trigger is a
// disjunction of these (Section 3).
type TransPred struct {
	Op     TransPredOp
	Table  string
	Column string // for `updated t.c`; "" for whole-table predicates
}

// RuleAction describes what a rule does when its condition holds: execute
// an operation block, roll back the transaction, or call a registered
// external procedure (Section 5.2 extension).
type RuleAction struct {
	Rollback bool
	Call     string      // external procedure name; "" if none
	Block    []Statement // Insert/Delete/Update statements
}

// RuleScope selects which composite transition a rule is evaluated against
// (paper Section 4.2 and footnote 8). It is a documented syntax extension:
// `CREATE RULE name [SCOPE SINCE ACTION|CONSIDERED|TRIGGERED] WHEN ...`.
type RuleScope int

// Rule scopes. ScopeDefault (= since action) is the paper's semantics.
const (
	ScopeDefault RuleScope = iota
	ScopeSinceConsidered
	ScopeSinceTriggered
)

// CreateRule is the paper's
//
//	create rule name
//	when  trans-pred [or trans-pred ...]
//	[if   condition]
//	then  action
//
// statement. In scripts the action block may be terminated by an optional
// END keyword (a documented extension; the paper gives no terminator).
type CreateRule struct {
	Name      string
	Scope     RuleScope
	Preds     []TransPred
	Condition Expr // nil means IF TRUE
	Action    RuleAction
}

// CreateRulePriority is `create rule priority r1 before r2` (Section 4.4):
// rule r1 has higher priority than rule r2. Any acyclic set of such
// pairings induces a partial order.
type CreateRulePriority struct {
	Before string // the higher-priority rule
	After  string
}

// DropRule removes a rule definition.
type DropRule struct {
	Name string
}

// SetRuleActive activates or deactivates a rule without dropping it
// (a convenience extension).
type SetRuleActive struct {
	Name   string
	Active bool
}

// ProcessRules is the Section 5.3 "rule triggering point" statement: the
// current externally-generated transition is considered complete, rules are
// processed, and a new transition begins — within the same transaction.
type ProcessRules struct{}

func (*CreateRule) stmtNode()         {}
func (*CreateRulePriority) stmtNode() {}
func (*DropRule) stmtNode()           {}
func (*SetRuleActive) stmtNode()      {}
func (*ProcessRules) stmtNode()       {}
