package sqlast

import (
	"strings"
)

// opText maps binary operators to their SQL spelling.
var opText = map[BinOp]string{
	OpOr:  "OR",
	OpAnd: "AND",
	OpEq:  "=",
	OpNe:  "<>",
	OpLt:  "<",
	OpLe:  "<=",
	OpGt:  ">",
	OpGe:  ">=",
	OpAdd: "+",
	OpSub: "-",
	OpMul: "*",
	OpDiv: "/",
	OpMod: "%",
}

// String renders the operator's SQL spelling.
func (op BinOp) String() string { return opText[op] }

func (e *Literal) String() string { return e.Val.String() }

func (e *ColumnRef) String() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Column
	}
	return e.Column
}

// Binary expressions print fully parenthesized so that the output re-parses
// to an identical tree regardless of precedence.
func (e *Binary) String() string {
	return "(" + e.L.String() + " " + opText[e.Op] + " " + e.R.String() + ")"
}

func (e *Unary) String() string {
	switch e.Op {
	case OpNeg:
		return "(-" + e.X.String() + ")"
	case OpNot:
		return "(NOT " + e.X.String() + ")"
	default:
		return "(?" + e.X.String() + ")"
	}
}

func (e *IsNull) String() string {
	if e.Negate {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

func notWord(negate bool) string {
	if negate {
		return "NOT "
	}
	return ""
}

func (e *InList) String() string {
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.String()
	}
	return "(" + e.X.String() + " " + notWord(e.Negate) + "IN (" + strings.Join(items, ", ") + "))"
}

func (e *InSelect) String() string {
	return "(" + e.X.String() + " " + notWord(e.Negate) + "IN (" + e.Sub.String() + "))"
}

func (e *Exists) String() string {
	return "(" + notWord(e.Negate) + "EXISTS (" + e.Sub.String() + "))"
}

func (e *ScalarSub) String() string { return "(" + e.Sub.String() + ")" }

func (e *SubCompare) String() string {
	q := "ANY"
	if e.Quant == QuantAll {
		q = "ALL"
	}
	return "(" + e.X.String() + " " + opText[e.Op] + " " + q + " (" + e.Sub.String() + "))"
}

func (e *Between) String() string {
	return "(" + e.X.String() + " " + notWord(e.Negate) + "BETWEEN " +
		e.Lo.String() + " AND " + e.Hi.String() + ")"
}

func (e *Like) String() string {
	return "(" + e.X.String() + " " + notWord(e.Negate) + "LIKE " + e.Pattern.String() + ")"
}

func (e *FuncCall) String() string {
	var b strings.Builder
	b.WriteString(strings.ToUpper(e.Name))
	b.WriteByte('(')
	if e.Star {
		b.WriteByte('*')
	} else {
		if e.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

func (e *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	if e.Operand != nil {
		b.WriteByte(' ')
		b.WriteString(e.Operand.String())
	}
	for _, w := range e.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.String())
		b.WriteString(" THEN ")
		b.WriteString(w.Result.String())
	}
	if e.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// String renders the table reference, including transition-table forms.
func (tr *TableRef) String() string {
	var b strings.Builder
	switch tr.Trans {
	case TransNone:
		b.WriteString(tr.Table)
	case TransInserted:
		b.WriteString("INSERTED ")
		b.WriteString(tr.Table)
	case TransDeleted:
		b.WriteString("DELETED ")
		b.WriteString(tr.Table)
	case TransOldUpdated:
		b.WriteString("OLD UPDATED ")
		b.WriteString(tr.Table)
		if tr.Column != "" {
			b.WriteByte('.')
			b.WriteString(tr.Column)
		}
	case TransNewUpdated:
		b.WriteString("NEW UPDATED ")
		b.WriteString(tr.Table)
		if tr.Column != "" {
			b.WriteByte('.')
			b.WriteString(tr.Column)
		}
	case TransSelected:
		b.WriteString("SELECTED ")
		b.WriteString(tr.Table)
		if tr.Column != "" {
			b.WriteByte('.')
			b.WriteString(tr.Column)
		}
	}
	if tr.Alias != "" {
		b.WriteByte(' ')
		b.WriteString(tr.Alias)
	}
	return b.String()
}

// String renders the query block.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.Qualifier != "":
			b.WriteString(it.Qualifier)
			b.WriteString(".*")
		case it.Star:
			b.WriteByte('*')
		default:
			b.WriteString(it.Expr.String())
			if it.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, tr := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(tr.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		b.WriteString(s.Limit.String())
	}
	return b.String()
}

func (s *Explain) String() string { return "EXPLAIN " + s.Stmt.String() }

func (s *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteByte(')')
	}
	if s.Query != nil {
		b.WriteString(" (")
		b.WriteString(s.Query.String())
		b.WriteByte(')')
		return b.String()
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

func (s *Delete) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	if s.Alias != "" {
		b.WriteByte(' ')
		b.WriteString(s.Alias)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	return b.String()
}

func (s *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	if s.Alias != "" {
		b.WriteByte(' ')
		b.WriteString(s.Alias)
	}
	b.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column)
		b.WriteString(" = ")
		b.WriteString(a.Expr.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	return b.String()
}

func (s *CreateTable) String() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(s.Name)
	b.WriteString(" (")
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	b.WriteByte(')')
	return b.String()
}

func (s *DropTable) String() string { return "DROP TABLE " + s.Name }

func (s *CreateIndex) String() string {
	return "CREATE INDEX " + s.Name + " ON " + s.Table + " (" + s.Column + ")"
}

func (s *DropIndex) String() string { return "DROP INDEX " + s.Name }

// String renders the basic transition predicate in the paper's syntax.
func (p TransPred) String() string {
	switch p.Op {
	case PredInserted:
		return "INSERTED INTO " + p.Table
	case PredDeleted:
		return "DELETED FROM " + p.Table
	case PredUpdated:
		if p.Column != "" {
			return "UPDATED " + p.Table + "." + p.Column
		}
		return "UPDATED " + p.Table
	case PredSelected:
		if p.Column != "" {
			return "SELECTED " + p.Table + "." + p.Column
		}
		return "SELECTED " + p.Table
	default:
		return "?"
	}
}

func (s *CreateRule) String() string {
	var b strings.Builder
	b.WriteString("CREATE RULE ")
	b.WriteString(s.Name)
	switch s.Scope {
	case ScopeSinceConsidered:
		b.WriteString(" SCOPE SINCE CONSIDERED")
	case ScopeSinceTriggered:
		b.WriteString(" SCOPE SINCE TRIGGERED")
	}
	b.WriteString(" WHEN ")
	for i, p := range s.Preds {
		if i > 0 {
			b.WriteString(" OR ")
		}
		b.WriteString(p.String())
	}
	if s.Condition != nil {
		b.WriteString(" IF ")
		b.WriteString(s.Condition.String())
	}
	b.WriteString(" THEN ")
	switch {
	case s.Action.Rollback:
		b.WriteString("ROLLBACK")
	case s.Action.Call != "":
		b.WriteString("CALL ")
		b.WriteString(s.Action.Call)
	default:
		for i, op := range s.Action.Block {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(op.String())
		}
	}
	b.WriteString(" END")
	return b.String()
}

func (s *CreateRulePriority) String() string {
	return "CREATE RULE PRIORITY " + s.Before + " BEFORE " + s.After
}

func (s *DropRule) String() string { return "DROP RULE " + s.Name }

func (s *SetRuleActive) String() string {
	if s.Active {
		return "ACTIVATE RULE " + s.Name
	}
	return "DEACTIVATE RULE " + s.Name
}

func (s *ProcessRules) String() string { return "PROCESS RULES" }
