package sqlast

import (
	"strings"
	"testing"

	"sopr/internal/value"
)

func TestBinOpStrings(t *testing.T) {
	cases := map[BinOp]string{
		OpOr: "OR", OpAnd: "AND", OpEq: "=", OpNe: "<>",
		OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("BinOp(%d) = %q, want %q", int(op), got, want)
		}
	}
}

func lit(i int64) Expr { return &Literal{Val: value.NewInt(i)} }

func TestExprPrinting(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&Literal{Val: value.Null}, "NULL"},
		{&ColumnRef{Column: "a"}, "a"},
		{&ColumnRef{Qualifier: "t", Column: "a"}, "t.a"},
		{&Binary{Op: OpAdd, L: lit(1), R: lit(2)}, "(1 + 2)"},
		{&Unary{Op: OpNeg, X: lit(3)}, "(-3)"},
		{&Unary{Op: OpNot, X: lit(1)}, "(NOT 1)"},
		{&IsNull{X: lit(1)}, "(1 IS NULL)"},
		{&IsNull{X: lit(1), Negate: true}, "(1 IS NOT NULL)"},
		{&InList{X: lit(1), List: []Expr{lit(2), lit(3)}}, "(1 IN (2, 3))"},
		{&InList{X: lit(1), List: []Expr{lit(2)}, Negate: true}, "(1 NOT IN (2))"},
		{&Between{X: lit(1), Lo: lit(0), Hi: lit(9)}, "(1 BETWEEN 0 AND 9)"},
		{&Between{X: lit(1), Lo: lit(0), Hi: lit(9), Negate: true}, "(1 NOT BETWEEN 0 AND 9)"},
		{&Like{X: &ColumnRef{Column: "n"}, Pattern: &Literal{Val: value.NewString("a%")}}, "(n LIKE 'a%')"},
		{&FuncCall{Name: "count", Star: true}, "COUNT(*)"},
		{&FuncCall{Name: "sum", Distinct: true, Args: []Expr{&ColumnRef{Column: "x"}}}, "SUM(DISTINCT x)"},
		{&FuncCall{Name: "coalesce", Args: []Expr{lit(1), lit(2)}}, "COALESCE(1, 2)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestSubqueryPrinting(t *testing.T) {
	sub := &Select{
		Items: []SelectItem{{Expr: &ColumnRef{Column: "a"}}},
		From:  []*TableRef{{Table: "t"}},
	}
	cases := []struct {
		e    Expr
		want string
	}{
		{&InSelect{X: lit(1), Sub: sub}, "(1 IN (SELECT a FROM t))"},
		{&InSelect{X: lit(1), Sub: sub, Negate: true}, "(1 NOT IN (SELECT a FROM t))"},
		{&Exists{Sub: sub}, "(EXISTS (SELECT a FROM t))"},
		{&Exists{Sub: sub, Negate: true}, "(NOT EXISTS (SELECT a FROM t))"},
		{&ScalarSub{Sub: sub}, "(SELECT a FROM t)"},
		{&SubCompare{X: lit(1), Op: OpGt, Quant: QuantAny, Sub: sub}, "(1 > ANY (SELECT a FROM t))"},
		{&SubCompare{X: lit(1), Op: OpLe, Quant: QuantAll, Sub: sub}, "(1 <= ALL (SELECT a FROM t))"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestTableRefForms(t *testing.T) {
	cases := []struct {
		tr   TableRef
		want string
	}{
		{TableRef{Table: "t"}, "t"},
		{TableRef{Table: "t", Alias: "x"}, "t x"},
		{TableRef{Trans: TransInserted, Table: "t"}, "INSERTED t"},
		{TableRef{Trans: TransDeleted, Table: "t", Alias: "d"}, "DELETED t d"},
		{TableRef{Trans: TransOldUpdated, Table: "t"}, "OLD UPDATED t"},
		{TableRef{Trans: TransOldUpdated, Table: "t", Column: "c"}, "OLD UPDATED t.c"},
		{TableRef{Trans: TransNewUpdated, Table: "t", Column: "c", Alias: "n"}, "NEW UPDATED t.c n"},
		{TableRef{Trans: TransSelected, Table: "t", Column: "c"}, "SELECTED t.c"},
	}
	for _, c := range cases {
		if got := c.tr.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
	if (&TableRef{Table: "t", Alias: "x"}).Binding() != "x" {
		t.Error("Binding should prefer alias")
	}
	if (&TableRef{Table: "t"}).Binding() != "t" {
		t.Error("Binding falls back to table")
	}
}

func TestTransPredStrings(t *testing.T) {
	cases := []struct {
		p    TransPred
		want string
	}{
		{TransPred{Op: PredInserted, Table: "t"}, "INSERTED INTO t"},
		{TransPred{Op: PredDeleted, Table: "t"}, "DELETED FROM t"},
		{TransPred{Op: PredUpdated, Table: "t"}, "UPDATED t"},
		{TransPred{Op: PredUpdated, Table: "t", Column: "c"}, "UPDATED t.c"},
		{TransPred{Op: PredSelected, Table: "t"}, "SELECTED t"},
		{TransPred{Op: PredSelected, Table: "t", Column: "c"}, "SELECTED t.c"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestStatementPrinting(t *testing.T) {
	if got := (&DropTable{Name: "t"}).String(); got != "DROP TABLE t" {
		t.Errorf("DropTable: %q", got)
	}
	if got := (&DropRule{Name: "r"}).String(); got != "DROP RULE r" {
		t.Errorf("DropRule: %q", got)
	}
	if got := (&SetRuleActive{Name: "r", Active: true}).String(); got != "ACTIVATE RULE r" {
		t.Errorf("activate: %q", got)
	}
	if got := (&SetRuleActive{Name: "r"}).String(); got != "DEACTIVATE RULE r" {
		t.Errorf("deactivate: %q", got)
	}
	if got := (&ProcessRules{}).String(); got != "PROCESS RULES" {
		t.Errorf("process rules: %q", got)
	}
	if got := (&CreateRulePriority{Before: "a", After: "b"}).String(); got != "CREATE RULE PRIORITY a BEFORE b" {
		t.Errorf("priority: %q", got)
	}
	ins := &Insert{Table: "t", Columns: []string{"a", "b"}, Rows: [][]Expr{{lit(1), lit(2)}, {lit(3), lit(4)}}}
	if got := ins.String(); got != "INSERT INTO t (a, b) VALUES (1, 2), (3, 4)" {
		t.Errorf("insert: %q", got)
	}
	del := &Delete{Table: "t", Alias: "x", Where: lit(1)}
	if got := del.String(); got != "DELETE FROM t x WHERE 1" {
		t.Errorf("delete: %q", got)
	}
	upd := &Update{Table: "t", Alias: "x", Set: []Assignment{{Column: "a", Expr: lit(1)}}}
	if got := upd.String(); got != "UPDATE t x SET a = 1" {
		t.Errorf("update: %q", got)
	}
}

func TestSelectPrintingVariants(t *testing.T) {
	sel := &Select{
		Distinct: true,
		Items: []SelectItem{
			{Star: true},
			{Star: true, Qualifier: "q"},
			{Expr: &ColumnRef{Column: "a"}, Alias: "x"},
		},
		From:    []*TableRef{{Table: "t"}, {Table: "u", Alias: "q"}},
		Where:   lit(1),
		GroupBy: []Expr{&ColumnRef{Column: "a"}},
		Having:  lit(1),
		OrderBy: []OrderItem{{Expr: &ColumnRef{Column: "a"}, Desc: true}, {Expr: &ColumnRef{Column: "x"}}},
	}
	got := sel.String()
	for _, frag := range []string{"SELECT DISTINCT *", "q.*", "a AS x", "FROM t, u q",
		"WHERE 1", "GROUP BY a", "HAVING 1", "ORDER BY a DESC, x"} {
		if !strings.Contains(got, frag) {
			t.Errorf("select printing missing %q in %q", frag, got)
		}
	}
}

func TestCasePrinting(t *testing.T) {
	c := &Case{
		Whens: []When{{Cond: lit(1), Result: lit(2)}},
		Else:  lit(3),
	}
	if got := c.String(); got != "CASE WHEN 1 THEN 2 ELSE 3 END" {
		t.Errorf("searched case: %q", got)
	}
	c = &Case{
		Operand: &ColumnRef{Column: "x"},
		Whens:   []When{{Cond: lit(1), Result: lit(2)}, {Cond: lit(3), Result: lit(4)}},
	}
	if got := c.String(); got != "CASE x WHEN 1 THEN 2 WHEN 3 THEN 4 END" {
		t.Errorf("simple case: %q", got)
	}
}

func TestCreateTablePrinting(t *testing.T) {
	ct := &CreateTable{Name: "t", Columns: []ColumnDef{
		{Name: "a", Type: value.KindInt, NotNull: true},
		{Name: "b", Type: value.KindString},
	}}
	want := "CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR)"
	if got := ct.String(); got != want {
		t.Errorf("CreateTable: %q, want %q", got, want)
	}
}

func TestCreateRuleScopePrinting(t *testing.T) {
	cr := &CreateRule{
		Name:   "r",
		Scope:  ScopeSinceTriggered,
		Preds:  []TransPred{{Op: PredUpdated, Table: "t"}},
		Action: RuleAction{Rollback: true},
	}
	if got := cr.String(); !strings.Contains(got, "SCOPE SINCE TRIGGERED") {
		t.Errorf("scope printing: %q", got)
	}
	cr.Scope = ScopeSinceConsidered
	if got := cr.String(); !strings.Contains(got, "SCOPE SINCE CONSIDERED") {
		t.Errorf("scope printing: %q", got)
	}
	cr.Scope = ScopeDefault
	if got := cr.String(); strings.Contains(got, "SCOPE") {
		t.Errorf("default scope should not print: %q", got)
	}
}
