package sqlparse

import "fmt"

// SyntaxError is a lexical or grammatical error with 1-based position
// information. Callers that present scripts spanning many lines (the shell,
// the network server) use Line/Col to point at the failing spot; Error keeps
// the historical "syntax error at line L, column C: msg" text.
type SyntaxError struct {
	Pos  int // byte offset into the source
	Line int // 1-based line
	Col  int // 1-based column
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

// syntaxErrorAt builds a SyntaxError for a byte offset in src.
func syntaxErrorAt(src string, pos int, msg string) *SyntaxError {
	line, col := position(src, pos)
	return &SyntaxError{Pos: pos, Line: line, Col: col, Msg: msg}
}
