package sqlparse

import (
	"testing"
)

// FuzzParseStatements checks that the parser never panics and that anything
// it accepts round-trips through the printer (parse → print → parse →
// print is a fixed point).
func FuzzParseStatements(f *testing.F) {
	for _, seed := range []string{
		`select * from t`,
		`select distinct a, b + 1 as c from t, u x where a in (1,2) and exists (select * from v) group by a having count(*) > 1 order by a desc`,
		`insert into t (a, b) values (1, 2.5), ('x''y', null)`,
		`insert into t (select a from u)`,
		`update t set a = -b / 2 where a between 1 and 9 or c like 'a%'`,
		`delete from t where a = any (select b from u)`,
		`create table t (a int not null, b varchar(20), c boolean)`,
		`create rule r scope since triggered when inserted into t or updated t.c if (select sum(a) from inserted t) > 0 then delete from t; update t set a = 1 end`,
		`create rule priority a before b; drop rule a; activate rule b; process rules`,
		`select sum(salary) from new updated emp.salary o, old updated emp n`,
		`-- comment
		 select 1`,
		`select 'unterminated`,
		`select 1e9, 1.5e-3, 999999999999999999999999`,
		`create rule r when deleted from t then rollback`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseStatements(src)
		if err != nil {
			return
		}
		for _, st := range stmts {
			printed := st.String()
			st2, err := ParseStatement(printed)
			if err != nil {
				t.Fatalf("printed form does not re-parse: %q → %q: %v", src, printed, err)
			}
			if printed2 := st2.String(); printed2 != printed {
				t.Fatalf("printer not a fixed point: %q vs %q", printed, printed2)
			}
		}
	})
}

// FuzzLex checks the lexer in isolation.
func FuzzLex(f *testing.F) {
	f.Add("select * from t where a = 'x''y' -- c")
	f.Add("1.5e+ !! <> <= >= ! '")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatal("token stream must end with EOF")
		}
	})
}
