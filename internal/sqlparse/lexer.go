// Package sqlparse contains the hand-written lexer and recursive-descent
// parser for the paper's SQL dialect, producing sqlast trees.
//
// Keywords are recognized case-insensitively and contextually: the lexer
// emits plain identifier tokens and the parser matches keyword spellings,
// so non-reserved words (e.g. a column named "name") never clash.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // operators and punctuation: ( ) , ; . = <> < <= > >= + - * / %
)

type token struct {
	kind tokKind
	text string // identifiers lowercased; numbers/strings verbatim payload
	pos  int    // byte offset in the input, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// position converts a byte offset into 1-based line and column numbers.
func position(src string, off int) (line, col int) {
	line, col = 1, 1
	if off > len(src) {
		off = len(src)
	}
	for i := 0; i < off; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// lex tokenizes src. String literals use single quotes with ” escaping.
// Comments: -- to end of line.
func lex(src string) ([]token, error) {
	mkErr := func(pos int, msg string) error {
		return syntaxErrorAt(src, pos, msg)
	}
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c < utf8.RuneSelf && isIdentStart(rune(c)):
			start := i
			for i < n {
				r, size := utf8.DecodeRuneInString(src[i:])
				if r == utf8.RuneError && size == 1 {
					return nil, mkErr(i, "invalid UTF-8 byte")
				}
				if !isIdentPart(r) {
					break
				}
				i += size
			}
			toks = append(toks, token{tokIdent, strings.ToLower(src[start:i]), start})
		case c >= utf8.RuneSelf:
			r, size := utf8.DecodeRuneInString(src[i:])
			if r == utf8.RuneError && size == 1 {
				return nil, mkErr(i, "invalid UTF-8 byte")
			}
			if !isIdentStart(r) {
				return nil, mkErr(i, fmt.Sprintf("unexpected character %q", r))
			}
			start := i
			i += size
			for i < n {
				r, size := utf8.DecodeRuneInString(src[i:])
				if r == utf8.RuneError && size == 1 {
					return nil, mkErr(i, "invalid UTF-8 byte")
				}
				if !isIdentPart(r) {
					break
				}
				i += size
			}
			toks = append(toks, token{tokIdent, strings.ToLower(src[start:i]), start})
		case c >= '0' && c <= '9':
			start := i
			seenDot := false
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' && !seenDot && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9') {
				if src[i] == '.' {
					seenDot = true
				}
				i++
			}
			// Exponent part.
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < n && src[j] >= '0' && src[j] <= '9' {
					i = j
					for i < n && src[i] >= '0' && src[i] <= '9' {
						i++
					}
				}
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, mkErr(start, "unterminated string literal")
			}
			toks = append(toks, token{tokString, b.String(), start})
		case c == '<':
			if i+1 < n && (src[i+1] == '=' || src[i+1] == '>') {
				toks = append(toks, token{tokOp, src[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "<>", i}) // normalize != to <>
				i += 2
			} else {
				return nil, mkErr(i, "unexpected '!'")
			}
		case strings.ContainsRune("(),;.=+-*/%", rune(c)):
			toks = append(toks, token{tokOp, string(c), i})
			i++
		default:
			return nil, mkErr(i, fmt.Sprintf("unexpected character %q", c))
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
