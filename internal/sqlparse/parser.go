package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"sopr/internal/sqlast"
	"sopr/internal/value"
)

// Parser state: a token stream with one-token operations plus arbitrary
// lookahead via peekAt.
type parser struct {
	src  string
	toks []token
	pos  int
}

// ParseStatements parses a semicolon-separated script into statements.
// CREATE RULE actions consume operation blocks greedily; terminate a rule
// with END when the following statement could be mistaken for part of the
// action (see the package documentation).
func ParseStatements(src string) ([]sqlast.Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	var stmts []sqlast.Statement
	for {
		for p.acceptOp(";") {
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptOp(";") && p.peek().kind != tokEOF {
			return nil, p.errorf("expected ';' or end of input, found %s", p.peek())
		}
	}
}

// ParseStatement parses exactly one statement.
func ParseStatement(src string) (sqlast.Statement, error) {
	stmts, err := ParseStatements(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqlparse: expected one statement, found %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseExpr parses a standalone expression (used by tests and the
// constraint compiler).
func ParseExpr(src string) (sqlast.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) peekAt(k int) token {
	if p.pos+k >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+k]
}

func (p *parser) errorf(format string, args ...any) error {
	return syntaxErrorAt(p.src, p.peek().pos, fmt.Sprintf(format, args...))
}

// isKw reports whether tok is the identifier kw (already lowercase).
func isKw(t token, kw string) bool { return t.kind == tokIdent && t.text == kw }

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if isKw(p.peek(), kw) {
		p.pos++
		return true
	}
	return false
}

// expectKw consumes the keyword or errors.
func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errorf("expected %s, found %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

// acceptOp consumes the operator token if present.
func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

// expectOp consumes the operator or errors.
func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, found %s", op, p.peek())
	}
	return nil
}

// expectIdent consumes and returns an identifier.
func (p *parser) expectIdent(what string) (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected %s, found %s", what, t)
	}
	p.pos++
	return t.text, nil
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *parser) parseStatement() (sqlast.Statement, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errorf("expected statement, found %s", t)
	}
	switch t.text {
	case "create":
		return p.parseCreate()
	case "drop":
		return p.parseDrop()
	case "insert":
		return p.parseInsert()
	case "delete":
		return p.parseDelete()
	case "update":
		return p.parseUpdate()
	case "select":
		return p.parseSelect()
	case "explain":
		p.pos++
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		switch inner.(type) {
		case *sqlast.Select, *sqlast.Insert, *sqlast.Delete, *sqlast.Update:
			return &sqlast.Explain{Stmt: inner}, nil
		default:
			return nil, p.errorf("EXPLAIN supports SELECT, INSERT, DELETE and UPDATE only")
		}
	case "activate", "deactivate":
		p.pos++
		if err := p.expectKw("rule"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent("rule name")
		if err != nil {
			return nil, err
		}
		return &sqlast.SetRuleActive{Name: name, Active: t.text == "activate"}, nil
	case "process":
		p.pos++
		if err := p.expectKw("rules"); err != nil {
			return nil, err
		}
		return &sqlast.ProcessRules{}, nil
	default:
		return nil, p.errorf("unknown statement keyword %s", t)
	}
}

func (p *parser) parseCreate() (sqlast.Statement, error) {
	p.pos++ // create
	switch {
	case p.acceptKw("table"):
		return p.parseCreateTable()
	case p.acceptKw("index"):
		return p.parseCreateIndex()
	case isKw(p.peek(), "rule"):
		p.pos++
		// `create rule priority r1 before r2` vs `create rule name when ...`
		if isKw(p.peek(), "priority") && p.peekAt(1).kind == tokIdent && isKw(p.peekAt(2), "before") {
			p.pos++
			before, err := p.expectIdent("rule name")
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("before"); err != nil {
				return nil, err
			}
			after, err := p.expectIdent("rule name")
			if err != nil {
				return nil, err
			}
			return &sqlast.CreateRulePriority{Before: before, After: after}, nil
		}
		return p.parseCreateRule()
	default:
		return nil, p.errorf("expected TABLE, INDEX or RULE after CREATE, found %s", p.peek())
	}
}

// parseCreateIndex parses `CREATE INDEX name ON table (column)` with the
// leading CREATE INDEX already consumed.
func (p *parser) parseCreateIndex() (sqlast.Statement, error) {
	name, err := p.expectIdent("index name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	column, err := p.expectIdent("column name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.CreateIndex{Name: name, Table: table, Column: column}, nil
}

var typeNames = map[string]value.Kind{
	"int": value.KindInt, "integer": value.KindInt, "bigint": value.KindInt, "smallint": value.KindInt,
	"float": value.KindFloat, "real": value.KindFloat, "double": value.KindFloat, "decimal": value.KindFloat, "numeric": value.KindFloat,
	"varchar": value.KindString, "char": value.KindString, "text": value.KindString, "string": value.KindString,
	"boolean": value.KindBool, "bool": value.KindBool,
}

func (p *parser) parseCreateTable() (sqlast.Statement, error) {
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []sqlast.ColumnDef
	for {
		cname, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		tname, err := p.expectIdent("column type")
		if err != nil {
			return nil, err
		}
		kind, ok := typeNames[tname]
		if !ok {
			return nil, p.errorf("unknown type %q", tname)
		}
		// Optional length, e.g. VARCHAR(20) — accepted and ignored.
		if p.acceptOp("(") {
			if p.peek().kind != tokNumber {
				return nil, p.errorf("expected length, found %s", p.peek())
			}
			p.pos++
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		notNull := false
		if p.acceptKw("not") {
			if err := p.expectKw("null"); err != nil {
				return nil, err
			}
			notNull = true
		}
		cols = append(cols, sqlast.ColumnDef{Name: cname, Type: kind, NotNull: notNull})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.CreateTable{Name: name, Columns: cols}, nil
}

func (p *parser) parseDrop() (sqlast.Statement, error) {
	p.pos++ // drop
	switch {
	case p.acceptKw("table"):
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		return &sqlast.DropTable{Name: name}, nil
	case p.acceptKw("index"):
		name, err := p.expectIdent("index name")
		if err != nil {
			return nil, err
		}
		return &sqlast.DropIndex{Name: name}, nil
	case p.acceptKw("rule"):
		name, err := p.expectIdent("rule name")
		if err != nil {
			return nil, err
		}
		return &sqlast.DropRule{Name: name}, nil
	default:
		return nil, p.errorf("expected TABLE, INDEX or RULE after DROP, found %s", p.peek())
	}
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

func (p *parser) parseInsert() (sqlast.Statement, error) {
	p.pos++ // insert
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	ins := &sqlast.Insert{Table: table}
	// Optional column list: `(` followed by an identifier that is not
	// SELECT. `(select ...)` is the select-form of insert (paper §2.1).
	if p.peek().kind == tokOp && p.peek().text == "(" && !isKw(p.peekAt(1), "select") {
		p.pos++
		for {
			c, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.acceptKw("values"):
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []sqlast.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.acceptOp(",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		return ins, nil
	case p.peek().kind == tokOp && p.peek().text == "(" && isKw(p.peekAt(1), "select"):
		p.pos++
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Query = q
		return ins, nil
	case isKw(p.peek(), "select"):
		// Also accept the unparenthesized form INSERT INTO t SELECT ...
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
		return ins, nil
	default:
		return nil, p.errorf("expected VALUES or (SELECT ...), found %s", p.peek())
	}
}

func (p *parser) parseDelete() (sqlast.Statement, error) {
	p.pos++ // delete
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	del := &sqlast.Delete{Table: table}
	alias, ok, err := p.tryAlias()
	if err != nil {
		return nil, err
	}
	if ok {
		del.Alias = alias
	}
	if p.acceptKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) parseUpdate() (sqlast.Statement, error) {
	p.pos++ // update
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	upd := &sqlast.Update{Table: table}
	if !isKw(p.peek(), "set") {
		alias, ok, err := p.tryAlias()
		if err != nil {
			return nil, err
		}
		if ok {
			upd.Alias = alias
		}
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, sqlast.Assignment{Column: col, Expr: e})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

// aliasStoppers are keywords that may follow a table reference and
// therefore cannot be aliases.
var aliasStoppers = map[string]bool{
	"where": true, "group": true, "order": true, "having": true,
	"set": true, "values": true, "when": true, "if": true, "then": true,
	"end": true, "and": true, "or": true, "on": true, "union": true,
	"select": true, "from": true, "inner": true, "join": true, "limit": true,
	"create": true, "drop": true, "insert": true, "delete": true, "update": true,
	"desc": true, "asc": true, "rollback": true, "process": true, "before": true,
	"case": true, "else": true,
}

// tryAlias consumes an optional [AS] alias after a table reference. An
// explicit AS must be followed by an identifier.
func (p *parser) tryAlias() (string, bool, error) {
	if p.acceptKw("as") {
		a, err := p.expectIdent("alias")
		if err != nil {
			return "", false, err
		}
		return a, true, nil
	}
	t := p.peek()
	if t.kind == tokIdent && !aliasStoppers[t.text] {
		p.pos++
		return t.text, true, nil
	}
	return "", false, nil
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

func (p *parser) parseSelect() (*sqlast.Select, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	sel := &sqlast.Select{}
	if p.acceptKw("distinct") {
		sel.Distinct = true
	}
	// Projection items.
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, it)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("from") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, tr)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := sqlast.OrderItem{Expr: e}
			if p.acceptKw("desc") {
				item.Desc = true
			} else {
				p.acceptKw("asc")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("limit") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (sqlast.SelectItem, error) {
	if p.acceptOp("*") {
		return sqlast.SelectItem{Star: true}, nil
	}
	// q.* form.
	if p.peek().kind == tokIdent && p.peekAt(1).kind == tokOp && p.peekAt(1).text == "." &&
		p.peekAt(2).kind == tokOp && p.peekAt(2).text == "*" {
		q := p.next().text
		p.pos += 2
		return sqlast.SelectItem{Star: true, Qualifier: q}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	it := sqlast.SelectItem{Expr: e}
	if p.acceptKw("as") {
		a, err := p.expectIdent("alias")
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		it.Alias = a
	} else if t := p.peek(); t.kind == tokIdent && !aliasStoppers[t.text] {
		p.pos++
		it.Alias = t.text
	}
	return it, nil
}

// parseTableRef parses a FROM entry: a base table or a transition table
// (`inserted t`, `deleted t`, `old|new updated t[.c]`, `selected t[.c]`),
// each with an optional alias.
func (p *parser) parseTableRef() (*sqlast.TableRef, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errorf("expected table reference, found %s", t)
	}
	mk := func(kind sqlast.TransKind, withColumn bool) (*sqlast.TableRef, error) {
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		tr := &sqlast.TableRef{Trans: kind, Table: name}
		if withColumn && p.peek().kind == tokOp && p.peek().text == "." {
			p.pos++
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			tr.Column = col
		}
		a, ok, err := p.tryAlias()
		if err != nil {
			return nil, err
		}
		if ok {
			tr.Alias = a
		}
		return tr, nil
	}
	switch {
	case t.text == "inserted" && p.peekAt(1).kind == tokIdent && !aliasStoppers[p.peekAt(1).text]:
		p.pos++
		return mk(sqlast.TransInserted, false)
	case t.text == "deleted" && p.peekAt(1).kind == tokIdent && !aliasStoppers[p.peekAt(1).text]:
		p.pos++
		return mk(sqlast.TransDeleted, false)
	case t.text == "selected" && p.peekAt(1).kind == tokIdent && !aliasStoppers[p.peekAt(1).text]:
		p.pos++
		return mk(sqlast.TransSelected, true)
	case (t.text == "old" || t.text == "new") && isKw(p.peekAt(1), "updated") && p.peekAt(2).kind == tokIdent:
		p.pos += 2
		if t.text == "old" {
			return mk(sqlast.TransOldUpdated, true)
		}
		return mk(sqlast.TransNewUpdated, true)
	default:
		return mk(sqlast.TransNone, false)
	}
}

// ---------------------------------------------------------------------------
// CREATE RULE
// ---------------------------------------------------------------------------

func (p *parser) parseCreateRule() (sqlast.Statement, error) {
	name, err := p.expectIdent("rule name")
	if err != nil {
		return nil, err
	}
	rule := &sqlast.CreateRule{Name: name}
	// Optional `SCOPE SINCE ACTION|CONSIDERED|TRIGGERED` (footnote 8
	// extension).
	if p.acceptKw("scope") {
		if err := p.expectKw("since"); err != nil {
			return nil, err
		}
		t := p.peek()
		switch {
		case isKw(t, "action"):
			rule.Scope = sqlast.ScopeDefault
		case isKw(t, "considered"):
			rule.Scope = sqlast.ScopeSinceConsidered
		case isKw(t, "triggered"):
			rule.Scope = sqlast.ScopeSinceTriggered
		default:
			return nil, p.errorf("expected ACTION, CONSIDERED or TRIGGERED, found %s", t)
		}
		p.pos++
	}
	if err := p.expectKw("when"); err != nil {
		return nil, err
	}
	for {
		pred, err := p.parseTransPred()
		if err != nil {
			return nil, err
		}
		rule.Preds = append(rule.Preds, pred)
		if p.acceptKw("or") {
			continue
		}
		break
	}
	if p.acceptKw("if") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		rule.Condition = c
	}
	if err := p.expectKw("then"); err != nil {
		return nil, err
	}
	action, err := p.parseRuleAction()
	if err != nil {
		return nil, err
	}
	rule.Action = action
	return rule, nil
}

func (p *parser) parseTransPred() (sqlast.TransPred, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return sqlast.TransPred{}, p.errorf("expected transition predicate, found %s", t)
	}
	switch t.text {
	case "inserted":
		p.pos++
		if err := p.expectKw("into"); err != nil {
			return sqlast.TransPred{}, err
		}
		tab, err := p.expectIdent("table name")
		if err != nil {
			return sqlast.TransPred{}, err
		}
		return sqlast.TransPred{Op: sqlast.PredInserted, Table: tab}, nil
	case "deleted":
		p.pos++
		if err := p.expectKw("from"); err != nil {
			return sqlast.TransPred{}, err
		}
		tab, err := p.expectIdent("table name")
		if err != nil {
			return sqlast.TransPred{}, err
		}
		return sqlast.TransPred{Op: sqlast.PredDeleted, Table: tab}, nil
	case "updated", "selected":
		p.pos++
		tab, err := p.expectIdent("table name")
		if err != nil {
			return sqlast.TransPred{}, err
		}
		pred := sqlast.TransPred{Op: sqlast.PredUpdated, Table: tab}
		if t.text == "selected" {
			pred.Op = sqlast.PredSelected
		}
		if p.peek().kind == tokOp && p.peek().text == "." {
			p.pos++
			col, err := p.expectIdent("column name")
			if err != nil {
				return sqlast.TransPred{}, err
			}
			pred.Column = col
		}
		return pred, nil
	default:
		return sqlast.TransPred{}, p.errorf("expected INSERTED/DELETED/UPDATED/SELECTED, found %s", t)
	}
}

// parseRuleAction parses ROLLBACK, CALL proc, or an operation block of
// INSERT/DELETE/UPDATE/SELECT operations separated by ';'. (SELECT in an
// action is the Section 5.1 "data retrieval in rules' actions" extension:
// the result set is delivered to the client with the transaction result.)
// The block ends at END, end of input, or a ';' followed by a token that
// cannot begin another operation of the block.
func (p *parser) parseRuleAction() (sqlast.RuleAction, error) {
	if p.acceptKw("rollback") {
		p.acceptKw("end")
		return sqlast.RuleAction{Rollback: true}, nil
	}
	if p.acceptKw("call") {
		proc, err := p.expectIdent("procedure name")
		if err != nil {
			return sqlast.RuleAction{}, err
		}
		p.acceptKw("end")
		return sqlast.RuleAction{Call: proc}, nil
	}
	var block []sqlast.Statement
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return sqlast.RuleAction{}, p.errorf("expected action operation, found %s", t)
		}
		var (
			op  sqlast.Statement
			err error
		)
		switch t.text {
		case "insert":
			op, err = p.parseInsert()
		case "delete":
			op, err = p.parseDelete()
		case "update":
			op, err = p.parseUpdate()
		case "select":
			op, err = p.parseSelect()
		default:
			return sqlast.RuleAction{}, p.errorf("rule actions may contain INSERT, DELETE, UPDATE or SELECT operations; found %s", t)
		}
		if err != nil {
			return sqlast.RuleAction{}, err
		}
		block = append(block, op)
		if p.acceptKw("end") {
			break
		}
		// A ';' continues the block only if another block operation follows.
		if p.peek().kind == tokOp && p.peek().text == ";" {
			nxt := p.peekAt(1)
			if nxt.kind == tokIdent &&
				(nxt.text == "insert" || nxt.text == "delete" || nxt.text == "update" || nxt.text == "select") {
				p.pos++
				continue
			}
			if isKw(nxt, "end") {
				p.pos += 2
				break
			}
		}
		break
	}
	return sqlast.RuleAction{Block: block}, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (sqlast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: sqlast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (sqlast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: sqlast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (sqlast.Expr, error) {
	if p.acceptKw("not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: sqlast.OpNot, X: x}, nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]sqlast.BinOp{
	"=": sqlast.OpEq, "<>": sqlast.OpNe,
	"<": sqlast.OpLt, "<=": sqlast.OpLe,
	">": sqlast.OpGt, ">=": sqlast.OpGe,
}

// parsePredicate parses an additive expression optionally followed by one
// comparison/predicate suffix (IS NULL, IN, BETWEEN, LIKE, comparison).
func (p *parser) parsePredicate() (sqlast.Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKw("is") {
		neg := p.acceptKw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &sqlast.IsNull{X: x, Negate: neg}, nil
	}
	neg := false
	if isKw(p.peek(), "not") {
		nxt := p.peekAt(1)
		if isKw(nxt, "in") || isKw(nxt, "between") || isKw(nxt, "like") {
			p.pos++
			neg = true
		}
	}
	switch {
	case p.acceptKw("in"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if isKw(p.peek(), "select") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.InSelect{X: x, Sub: sub, Negate: neg}, nil
		}
		var list []sqlast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.InList{X: x, List: list, Negate: neg}, nil
	case p.acceptKw("between"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &sqlast.Between{X: x, Lo: lo, Hi: hi, Negate: neg}, nil
	case p.acceptKw("like"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &sqlast.Like{X: x, Pattern: pat, Negate: neg}, nil
	}
	// Comparison.
	if t := p.peek(); t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.pos++
			// Quantified subquery: op ANY|SOME|ALL (select ...)
			if isKw(p.peek(), "any") || isKw(p.peek(), "some") || isKw(p.peek(), "all") {
				quant := sqlast.QuantAny
				if p.peek().text == "all" {
					quant = sqlast.QuantAll
				}
				p.pos++
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &sqlast.SubCompare{X: x, Op: op, Quant: quant, Sub: sub}, nil
			}
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &sqlast.Binary{Op: op, L: x, R: r}, nil
		}
	}
	return x, nil
}

// parseCase parses `CASE [operand] WHEN c THEN r ... [ELSE e] END`.
func (p *parser) parseCase() (sqlast.Expr, error) {
	p.pos++ // case
	c := &sqlast.Case{}
	if !isKw(p.peek(), "when") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.When{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKw("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseAdd() (sqlast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.pos++
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		op := sqlast.OpAdd
		if t.text == "-" {
			op = sqlast.OpSub
		}
		l = &sqlast.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (sqlast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		var op sqlast.BinOp
		switch t.text {
		case "*":
			op = sqlast.OpMul
		case "/":
			op = sqlast.OpDiv
		default:
			op = sqlast.OpMod
		}
		l = &sqlast.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (sqlast.Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: sqlast.OpNeg, X: x}, nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (sqlast.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q: %v", t.text, err)
			}
			return &sqlast.Literal{Val: value.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			// Out-of-range integer literal falls back to float.
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q: %v", t.text, err)
			}
			return &sqlast.Literal{Val: value.NewFloat(f)}, nil
		}
		return &sqlast.Literal{Val: value.NewInt(i)}, nil
	case tokString:
		p.pos++
		return &sqlast.Literal{Val: value.NewString(t.text)}, nil
	case tokOp:
		if t.text == "(" {
			p.pos++
			if isKw(p.peek(), "select") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &sqlast.ScalarSub{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s", t)
	case tokIdent:
		switch t.text {
		case "null":
			p.pos++
			return &sqlast.Literal{Val: value.Null}, nil
		case "true":
			p.pos++
			return &sqlast.Literal{Val: value.NewBool(true)}, nil
		case "false":
			p.pos++
			return &sqlast.Literal{Val: value.NewBool(false)}, nil
		case "exists":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.Exists{Sub: sub}, nil
		case "case":
			return p.parseCase()
		}
		// Function call?
		if p.peekAt(1).kind == tokOp && p.peekAt(1).text == "(" {
			name := t.text
			p.pos += 2
			fc := &sqlast.FuncCall{Name: name}
			if p.acceptOp("*") {
				fc.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.acceptKw("distinct") {
				fc.Distinct = true
			}
			if !p.acceptOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if p.acceptOp(",") {
						continue
					}
					break
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Column reference, possibly qualified. Reserved words cannot start
		// a column reference (catches e.g. `SELECT FROM t`).
		if aliasStoppers[t.text] {
			return nil, p.errorf("unexpected keyword %s", t)
		}
		p.pos++
		if p.peek().kind == tokOp && p.peek().text == "." && p.peekAt(1).kind == tokIdent {
			p.pos++
			col := p.next().text
			return &sqlast.ColumnRef{Qualifier: t.text, Column: col}, nil
		}
		return &sqlast.ColumnRef{Column: t.text}, nil
	default:
		return nil, p.errorf("unexpected %s", t)
	}
}
