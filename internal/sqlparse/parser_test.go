package sqlparse

import (
	"reflect"
	"strings"
	"testing"

	"sopr/internal/sqlast"
	"sopr/internal/value"
)

func parse1(t *testing.T, src string) sqlast.Statement {
	t.Helper()
	s, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("ParseStatement(%q): %v", src, err)
	}
	return s
}

func parseExpr(t *testing.T, src string) sqlast.Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a1,b.c FROM t WHERE x >= 1.5 -- comment\nAND s = 'it''s' != <>")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	want := []string{"select", "a1", ",", "b", ".", "c", "from", "t", "where", "x", ">=", "1.5",
		"and", "s", "=", "it's", "<>", "<>", ""}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("lex = %v,\nwant %v", texts, want)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("a ? b"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := lex("a ! b"); err == nil {
		t.Error("lone ! accepted")
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := lex("1 2.5 1e3 1.5E-2 7.e")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", "1e3", "1.5E-2", "7", ".", "e"}
	for i, w := range want {
		if toks[i].text != w {
			t.Errorf("tok[%d] = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	s := parse1(t, `CREATE TABLE emp (name VARCHAR(20), emp_no INT NOT NULL, salary FLOAT, dept_no INTEGER)`)
	ct, ok := s.(*sqlast.CreateTable)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ct.Name != "emp" || len(ct.Columns) != 4 {
		t.Fatalf("bad create: %+v", ct)
	}
	if ct.Columns[0].Type != value.KindString || ct.Columns[1].Type != value.KindInt ||
		!ct.Columns[1].NotNull || ct.Columns[2].Type != value.KindFloat {
		t.Errorf("column types wrong: %+v", ct.Columns)
	}
}

func TestParseCreateDropIndex(t *testing.T) {
	s := parse1(t, `CREATE INDEX emp_no_ix ON emp (emp_no)`)
	ci, ok := s.(*sqlast.CreateIndex)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ci.Name != "emp_no_ix" || ci.Table != "emp" || ci.Column != "emp_no" {
		t.Fatalf("bad create index: %+v", ci)
	}
	d := parse1(t, `drop index EMP_NO_IX`)
	di, ok := d.(*sqlast.DropIndex)
	if !ok || di.Name != "emp_no_ix" {
		t.Fatalf("bad drop index: %#v", d)
	}
	// Malformed forms fail with a parse error, not a panic.
	for _, bad := range []string{
		`create index on emp (emp_no)`,
		`create index ix emp (emp_no)`,
		`create index ix on emp emp_no`,
		`create index ix on emp (emp_no, salary)`,
		`create index ix on emp ()`,
		`drop index`,
	} {
		if _, err := ParseStatement(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestParseInsertValues(t *testing.T) {
	s := parse1(t, `INSERT INTO emp VALUES ('jane', 1, 95000.0, 1), ('jim', 2, NULL, 1)`)
	ins := s.(*sqlast.Insert)
	if ins.Table != "emp" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 4 {
		t.Fatalf("bad insert: %+v", ins)
	}
	if ins.Rows[1][2].(*sqlast.Literal).Val != value.Null {
		t.Error("NULL literal not parsed")
	}
}

func TestParseInsertColumnsAndSelect(t *testing.T) {
	s := parse1(t, `INSERT INTO t (a, b) VALUES (1, 2)`)
	ins := s.(*sqlast.Insert)
	if !reflect.DeepEqual(ins.Columns, []string{"a", "b"}) {
		t.Errorf("columns = %v", ins.Columns)
	}
	s = parse1(t, `INSERT INTO t (SELECT a, b FROM u WHERE a > 0)`)
	ins = s.(*sqlast.Insert)
	if ins.Query == nil || ins.Rows != nil {
		t.Fatalf("select-form insert not recognized: %+v", ins)
	}
	s = parse1(t, `INSERT INTO t SELECT * FROM u`)
	ins = s.(*sqlast.Insert)
	if ins.Query == nil {
		t.Fatal("unparenthesized select-form insert not recognized")
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	s := parse1(t, `DELETE FROM emp WHERE dept_no IN (SELECT dept_no FROM deleted dept)`)
	del := s.(*sqlast.Delete)
	if del.Table != "emp" || del.Where == nil {
		t.Fatalf("bad delete: %+v", del)
	}
	insel := del.Where.(*sqlast.InSelect)
	if insel.Sub.From[0].Trans != sqlast.TransDeleted || insel.Sub.From[0].Table != "dept" {
		t.Errorf("transition table not parsed: %+v", insel.Sub.From[0])
	}

	s = parse1(t, `UPDATE emp SET salary = 0.95 * salary, name = 'x' WHERE dept_no = 2`)
	upd := s.(*sqlast.Update)
	if len(upd.Set) != 2 || upd.Set[0].Column != "salary" || upd.Where == nil {
		t.Fatalf("bad update: %+v", upd)
	}
	s = parse1(t, `DELETE FROM emp`)
	if s.(*sqlast.Delete).Where != nil {
		t.Error("omitted predicate should be nil (means WHERE TRUE)")
	}
}

func TestParseSelectFull(t *testing.T) {
	s := parse1(t, `SELECT DISTINCT e.name AS n, salary + 1 bonus, COUNT(*) FROM emp e, dept
		WHERE e.dept_no = dept.dept_no AND salary > 100 GROUP BY e.name, salary
		HAVING COUNT(*) > 1 ORDER BY n DESC, salary ASC`)
	sel := s.(*sqlast.Select)
	if !sel.Distinct || len(sel.Items) != 3 || len(sel.From) != 2 ||
		len(sel.GroupBy) != 2 || sel.Having == nil || len(sel.OrderBy) != 2 {
		t.Fatalf("bad select: %+v", sel)
	}
	if sel.Items[0].Alias != "n" || sel.Items[1].Alias != "bonus" {
		t.Errorf("aliases: %+v", sel.Items)
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by direction wrong: %+v", sel.OrderBy)
	}
	if sel.From[0].Binding() != "e" || sel.From[1].Binding() != "dept" {
		t.Errorf("bindings: %v %v", sel.From[0].Binding(), sel.From[1].Binding())
	}
}

func TestParseStarForms(t *testing.T) {
	sel := parse1(t, `SELECT * FROM t`).(*sqlast.Select)
	if !sel.Items[0].Star || sel.Items[0].Qualifier != "" {
		t.Error("bare * wrong")
	}
	sel = parse1(t, `SELECT t.*, a FROM t`).(*sqlast.Select)
	if !sel.Items[0].Star || sel.Items[0].Qualifier != "t" || sel.Items[1].Star {
		t.Error("qualified star wrong")
	}
}

func TestParseTransitionTables(t *testing.T) {
	sel := parse1(t, `SELECT sum(salary) FROM new updated emp.salary`).(*sqlast.Select)
	tr := sel.From[0]
	if tr.Trans != sqlast.TransNewUpdated || tr.Table != "emp" || tr.Column != "salary" {
		t.Fatalf("new updated: %+v", tr)
	}
	sel = parse1(t, `SELECT * FROM old updated emp ou`).(*sqlast.Select)
	tr = sel.From[0]
	if tr.Trans != sqlast.TransOldUpdated || tr.Column != "" || tr.Alias != "ou" {
		t.Fatalf("old updated with alias: %+v", tr)
	}
	sel = parse1(t, `SELECT * FROM inserted t tvar`).(*sqlast.Select)
	tr = sel.From[0]
	if tr.Trans != sqlast.TransInserted || tr.Table != "t" || tr.Alias != "tvar" {
		t.Fatalf("inserted with alias: %+v", tr)
	}
	sel = parse1(t, `SELECT * FROM selected emp.salary`).(*sqlast.Select)
	if sel.From[0].Trans != sqlast.TransSelected || sel.From[0].Column != "salary" {
		t.Fatalf("selected: %+v", sel.From[0])
	}
	// A plain table named "inserted" at end of FROM (next token is WHERE)
	// parses as a base table.
	sel = parse1(t, `SELECT * FROM inserted WHERE a = 1`).(*sqlast.Select)
	if sel.From[0].Trans != sqlast.TransNone || sel.From[0].Table != "inserted" {
		t.Fatalf("bare 'inserted': %+v", sel.From[0])
	}
}

func TestParseExpressions(t *testing.T) {
	e := parseExpr(t, `a + b * c`)
	bin := e.(*sqlast.Binary)
	if bin.Op != sqlast.OpAdd || bin.R.(*sqlast.Binary).Op != sqlast.OpMul {
		t.Errorf("precedence wrong: %s", e)
	}
	e = parseExpr(t, `(a + b) * c`)
	if e.(*sqlast.Binary).Op != sqlast.OpMul {
		t.Errorf("parens wrong: %s", e)
	}
	e = parseExpr(t, `NOT a = 1 AND b = 2 OR c = 3`)
	if e.(*sqlast.Binary).Op != sqlast.OpOr {
		t.Errorf("OR should be outermost: %s", e)
	}
	e = parseExpr(t, `x IS NOT NULL`)
	if !e.(*sqlast.IsNull).Negate {
		t.Error("IS NOT NULL")
	}
	e = parseExpr(t, `x NOT IN (1, 2, 3)`)
	if il := e.(*sqlast.InList); !il.Negate || len(il.List) != 3 {
		t.Errorf("NOT IN list: %s", e)
	}
	e = parseExpr(t, `x BETWEEN 1 AND 10`)
	if e.(*sqlast.Between).Negate {
		t.Error("BETWEEN")
	}
	e = parseExpr(t, `name NOT LIKE 'a%'`)
	if !e.(*sqlast.Like).Negate {
		t.Error("NOT LIKE")
	}
	e = parseExpr(t, `-x + 2`)
	if e.(*sqlast.Binary).L.(*sqlast.Unary).Op != sqlast.OpNeg {
		t.Errorf("unary minus: %s", e)
	}
	e = parseExpr(t, `salary > ALL (SELECT salary FROM emp)`)
	sc := e.(*sqlast.SubCompare)
	if sc.Quant != sqlast.QuantAll || sc.Op != sqlast.OpGt {
		t.Errorf("ALL subquery: %s", e)
	}
	e = parseExpr(t, `x = ANY (SELECT a FROM t)`)
	if e.(*sqlast.SubCompare).Quant != sqlast.QuantAny {
		t.Errorf("ANY subquery: %s", e)
	}
	e = parseExpr(t, `EXISTS (SELECT * FROM t)`)
	if e.(*sqlast.Exists).Negate {
		t.Error("EXISTS")
	}
	e = parseExpr(t, `NOT EXISTS (SELECT * FROM t)`)
	if e.(*sqlast.Unary).Op != sqlast.OpNot {
		t.Errorf("NOT EXISTS parses as NOT(EXISTS): %s", e)
	}
	e = parseExpr(t, `COUNT(DISTINCT dept_no)`)
	fc := e.(*sqlast.FuncCall)
	if !fc.Distinct || fc.Name != "count" {
		t.Errorf("COUNT DISTINCT: %+v", fc)
	}
	e = parseExpr(t, `(SELECT sum(salary) FROM emp)`)
	if _, ok := e.(*sqlast.ScalarSub); !ok {
		t.Errorf("scalar subquery: %T", e)
	}
	e = parseExpr(t, `a % 3 = 0`)
	if e.(*sqlast.Binary).L.(*sqlast.Binary).Op != sqlast.OpMod {
		t.Errorf("mod: %s", e)
	}
}

func TestParseCase(t *testing.T) {
	e := parseExpr(t, `case when a > 1 then 'big' when a > 0 then 'small' else 'neg' end`)
	c := e.(*sqlast.Case)
	if c.Operand != nil || len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("searched case: %+v", c)
	}
	e = parseExpr(t, `case dept_no when 1 then 'eng' when 2 then 'ops' end`)
	c = e.(*sqlast.Case)
	if c.Operand == nil || len(c.Whens) != 2 || c.Else != nil {
		t.Fatalf("simple case: %+v", c)
	}
	for _, bad := range []string{
		`case end`,
		`case when a then b`,
		`case a when 1 then 2 else`,
		`case when a > 1 then 1 else 2`,
	} {
		if _, err := ParseExpr(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// CASE inside a rule action does not consume the rule's END.
	r := parse1(t, `create rule r when inserted into t
		then update t set a = case when a > 0 then 1 else 0 end
		end`).(*sqlast.CreateRule)
	if len(r.Action.Block) != 1 {
		t.Errorf("rule with CASE action: %+v", r.Action)
	}
}

func TestParsePaperExample31(t *testing.T) {
	// Example 3.1 verbatim (modulo identifier spelling).
	src := `create rule cascade_dept
		when deleted from dept
		then delete from emp
		     where dept_no in (select dept_no from deleted dept)`
	r := parse1(t, src).(*sqlast.CreateRule)
	if r.Name != "cascade_dept" || len(r.Preds) != 1 || r.Condition != nil {
		t.Fatalf("rule: %+v", r)
	}
	if r.Preds[0].Op != sqlast.PredDeleted || r.Preds[0].Table != "dept" {
		t.Errorf("pred: %+v", r.Preds[0])
	}
	if len(r.Action.Block) != 1 {
		t.Fatalf("action ops: %d", len(r.Action.Block))
	}
	if _, ok := r.Action.Block[0].(*sqlast.Delete); !ok {
		t.Errorf("action is %T", r.Action.Block[0])
	}
}

func TestParsePaperExample32(t *testing.T) {
	// Example 3.2: condition on old/new updated, two-operation action.
	src := `create rule salary_control
		when updated emp.salary
		if (select sum(salary) from new updated emp.salary) >
		   (select sum(salary) from old updated emp.salary)
		then update emp set salary = 0.95 * salary where dept_no = 2;
		     update emp set salary = 0.85 * salary where dept_no = 3`
	r := parse1(t, src).(*sqlast.CreateRule)
	if r.Preds[0].Op != sqlast.PredUpdated || r.Preds[0].Column != "salary" {
		t.Fatalf("pred: %+v", r.Preds[0])
	}
	if r.Condition == nil {
		t.Fatal("condition missing")
	}
	if len(r.Action.Block) != 2 {
		t.Fatalf("want 2 action ops, got %d", len(r.Action.Block))
	}
}

func TestParsePaperExample33(t *testing.T) {
	// Example 3.3: composite predicate, correlated subquery.
	src := `create rule overpaid
		when inserted into emp
		  or deleted from emp
		  or updated emp.salary
		  or updated emp.dept_no
		if exists (select * from emp e1
		           where salary > 2 * (select avg(salary) from emp e2
		                               where e2.dept_no = e1.dept_no))
		then delete from emp
		     where emp_no = (select mgr_no from dept where dept_no = 5)`
	r := parse1(t, src).(*sqlast.CreateRule)
	if len(r.Preds) != 4 {
		t.Fatalf("want 4 predicates, got %d", len(r.Preds))
	}
	wantOps := []sqlast.TransPredOp{sqlast.PredInserted, sqlast.PredDeleted, sqlast.PredUpdated, sqlast.PredUpdated}
	for i, w := range wantOps {
		if r.Preds[i].Op != w {
			t.Errorf("pred[%d].Op = %v, want %v", i, r.Preds[i].Op, w)
		}
	}
	if r.Preds[2].Column != "salary" || r.Preds[3].Column != "dept_no" {
		t.Errorf("columns: %+v", r.Preds)
	}
}

func TestParseRuleScope(t *testing.T) {
	r := parse1(t, `create rule r scope since considered when inserted into t then rollback`).(*sqlast.CreateRule)
	if r.Scope != sqlast.ScopeSinceConsidered {
		t.Errorf("scope = %v", r.Scope)
	}
	r = parse1(t, `create rule r scope since triggered when inserted into t then rollback`).(*sqlast.CreateRule)
	if r.Scope != sqlast.ScopeSinceTriggered {
		t.Errorf("scope = %v", r.Scope)
	}
	r = parse1(t, `create rule r scope since action when inserted into t then rollback`).(*sqlast.CreateRule)
	if r.Scope != sqlast.ScopeDefault {
		t.Errorf("scope = %v", r.Scope)
	}
	if _, err := ParseStatement(`create rule r scope since never when inserted into t then rollback`); err == nil {
		t.Error("bad scope accepted")
	}
	if _, err := ParseStatement(`create rule r scope considered when inserted into t then rollback`); err == nil {
		t.Error("missing SINCE accepted")
	}
}

func TestParseRollbackAndCallActions(t *testing.T) {
	r := parse1(t, `create rule guard when updated t.a then rollback`).(*sqlast.CreateRule)
	if !r.Action.Rollback {
		t.Error("rollback action")
	}
	r = parse1(t, `create rule notify when inserted into t then call send_mail`).(*sqlast.CreateRule)
	if r.Action.Call != "send_mail" {
		t.Errorf("call action: %+v", r.Action)
	}
}

func TestParseRulePriorityAndMgmt(t *testing.T) {
	s := parse1(t, `create rule priority r2 before r1`)
	pr := s.(*sqlast.CreateRulePriority)
	if pr.Before != "r2" || pr.After != "r1" {
		t.Errorf("priority: %+v", pr)
	}
	if parse1(t, `drop rule r1`).(*sqlast.DropRule).Name != "r1" {
		t.Error("drop rule")
	}
	if !parse1(t, `activate rule r1`).(*sqlast.SetRuleActive).Active {
		t.Error("activate")
	}
	if parse1(t, `deactivate rule r1`).(*sqlast.SetRuleActive).Active {
		t.Error("deactivate")
	}
	if _, ok := parse1(t, `process rules`).(*sqlast.ProcessRules); !ok {
		t.Error("process rules")
	}
}

func TestParseScriptWithRuleAndEnd(t *testing.T) {
	// END is needed when the next statement would look like part of the
	// action block.
	src := `create table t (a int);
		create rule r when inserted into t then delete from t where a < 0 end;
		insert into t values (1);
		select * from t`
	stmts, err := ParseStatements(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("want 4 statements, got %d", len(stmts))
	}
	if _, ok := stmts[1].(*sqlast.CreateRule); !ok {
		t.Errorf("stmt 1 is %T", stmts[1])
	}
	if _, ok := stmts[2].(*sqlast.Insert); !ok {
		t.Errorf("stmt 2 is %T (rule swallowed the insert?)", stmts[2])
	}
}

func TestParseScriptRuleWithoutEndBeforeNonDML(t *testing.T) {
	// Without END, a following statement that cannot be an action
	// operation still terminates the rule.
	src := `create rule r when inserted into t then delete from t;
		drop table t`
	stmts, err := ParseStatements(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("want 2 statements, got %d", len(stmts))
	}
	r := stmts[0].(*sqlast.CreateRule)
	if len(r.Action.Block) != 1 {
		t.Errorf("action ops: %d", len(r.Action.Block))
	}
}

func TestParseSelectInRuleAction(t *testing.T) {
	// Section 5.1: data retrieval in actions. A following SELECT continues
	// the block, so END is required to write a select-then-statement
	// script.
	src := `create rule report when updated emp.salary
		then select name, salary from new updated emp.salary;
		     delete from emp where salary < 0
		end;
		select * from emp`
	stmts, err := ParseStatements(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("want 2 statements, got %d", len(stmts))
	}
	r := stmts[0].(*sqlast.CreateRule)
	if len(r.Action.Block) != 2 {
		t.Fatalf("action ops: %d", len(r.Action.Block))
	}
	if _, ok := r.Action.Block[0].(*sqlast.Select); !ok {
		t.Errorf("first action op is %T, want *Select", r.Action.Block[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEC * FROM t`,
		`CREATE TABLE`,
		`CREATE TABLE t ()`,
		`CREATE TABLE t (a blob)`,
		`INSERT INTO t`,
		`INSERT t VALUES (1)`,
		`DELETE t`,
		`UPDATE t WHERE a = 1`,
		`SELECT FROM t`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t GROUP a`,
		`create rule r then delete from t`,
		`create rule r when inserted t then delete from t`,
		`create rule r when inserted into t`,
		`create rule r when inserted into t then drop table t`,
		`create rule r when deleted into t then rollback`,
		`x +`,
		`(a`,
		`f(a,`,
		`x in (`,
		`x between 1`,
		`create table t (a int,)`,
		`select * from t as`,
		`select a as from t`,
		`update t as set a = 1`,
		`insert into t values (1),`,
		`select a from t order by`,
		`create rule r scope when inserted into t then rollback`,
		`select case when 1 = 1 then 2`,
		`drop`,
		`create`,
		`activate r`,
		`process`,
		`select (select a from t`,
		`select f(`,
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("accepted invalid input %q", src)
		}
	}
	if _, err := ParseExpr(`a b`); err == nil {
		t.Error("trailing junk after expression accepted")
	}
	if _, err := ParseStatement(`select * from t; select * from t`); err == nil {
		t.Error("ParseStatement accepted two statements")
	}
}

// Round-trip: parse → print → parse yields a structurally identical tree.
func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`SELECT * FROM t`,
		`SELECT DISTINCT a, b + 1 AS c FROM t, u x WHERE (a = 1 AND b < 2) OR NOT c IS NULL GROUP BY a, b HAVING COUNT(*) > 1 ORDER BY a DESC, b`,
		`SELECT t.* FROM t WHERE a IN (1, 2) AND b NOT IN (SELECT b FROM u) AND EXISTS (SELECT * FROM v)`,
		`SELECT SUM(DISTINCT salary), AVG(x), MIN(y), MAX(z), COUNT(*) FROM emp`,
		`SELECT a FROM emp WHERE salary > ALL (SELECT salary FROM emp) AND x = ANY (SELECT y FROM u)`,
		`SELECT CASE WHEN (a > 1) THEN 'x' ELSE 'y' END FROM t`,
		`SELECT CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'y' END FROM t`,
		`SELECT a FROM inserted emp i, deleted dept, old updated emp.salary o, new updated emp n`,
		`INSERT INTO t VALUES (1, 2.5, 'x', NULL, TRUE)`,
		`INSERT INTO t (a, b) (SELECT a, b FROM u WHERE a BETWEEN 1 AND 2)`,
		`DELETE FROM emp WHERE dept_no IN (SELECT dept_no FROM deleted dept)`,
		`UPDATE emp e SET salary = (0.95 * salary), name = 'x' WHERE name LIKE 'a%'`,
		`CREATE TABLE emp (name VARCHAR, emp_no INTEGER NOT NULL, salary FLOAT, dept_no INTEGER)`,
		`DROP TABLE emp`,
		`CREATE INDEX emp_no_ix ON emp (emp_no)`,
		`DROP INDEX emp_no_ix`,
		`CREATE RULE r WHEN INSERTED INTO emp OR DELETED FROM emp OR UPDATED emp.salary OR UPDATED emp IF (a = 1) THEN DELETE FROM emp WHERE (a = 2); UPDATE emp SET a = 3 END`,
		`CREATE RULE r WHEN UPDATED t.c THEN ROLLBACK END`,
		`CREATE RULE r SCOPE SINCE CONSIDERED WHEN UPDATED t THEN ROLLBACK END`,
		`CREATE RULE r SCOPE SINCE TRIGGERED WHEN UPDATED t THEN ROLLBACK END`,
		`CREATE RULE r WHEN SELECTED t.c THEN CALL audit END`,
		`CREATE RULE PRIORITY r2 BEFORE r1`,
		`DROP RULE r`,
		`ACTIVATE RULE r`,
		`DEACTIVATE RULE r`,
		`PROCESS RULES`,
	}
	for _, src := range srcs {
		s1, err := ParseStatement(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		printed := s1.String()
		s2, err := ParseStatement(printed)
		if err != nil {
			t.Errorf("re-parse of %q (printed as %q): %v", src, printed, err)
			continue
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("round-trip mismatch for %q:\n first: %#v\nsecond: %#v\nprinted: %s", src, s1, s2, printed)
		}
		// Printing must be a fixed point after one round.
		if printed2 := s2.String(); printed2 != printed {
			t.Errorf("printer not stable: %q then %q", printed, printed2)
		}
	}
}

func TestErrorLineAndColumn(t *testing.T) {
	_, err := ParseStatements("select a\nfrom t\nwhere ???")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3, column 7") {
		t.Errorf("error position: %v", err)
	}
	// Parse-level (non-lex) error positions too.
	_, err = ParseStatements("select a\nfrom t\nwhere and")
	if err == nil || !strings.Contains(err.Error(), "line 3, column 7") {
		t.Errorf("parse error position: %v", err)
	}
	// Errors at end of input point past the last line.
	_, err = ParseStatements("select a from")
	if err == nil || !strings.Contains(err.Error(), "line 1, column 14") {
		t.Errorf("eof error position: %v", err)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	a := parse1(t, `select NAME from EMP where SALARY > 1`)
	b := parse1(t, `SELECT name FROM emp WHERE salary > 1`)
	if !reflect.DeepEqual(a, b) {
		t.Error("keywords/identifiers are not case-insensitive")
	}
}

func TestStringEscaping(t *testing.T) {
	sel := parse1(t, `select * from t where a = 'it''s ok'`).(*sqlast.Select)
	eq := sel.Where.(*sqlast.Binary)
	if eq.R.(*sqlast.Literal).Val.Str() != "it's ok" {
		t.Errorf("escaped string: %v", eq.R)
	}
	// Round-trip via printer.
	if !strings.Contains(sel.String(), "'it''s ok'") {
		t.Errorf("printer escaping: %s", sel.String())
	}
}
