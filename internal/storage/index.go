// Secondary hash indexes.
//
// A CREATE INDEX declares a persistent hash index over one column of a
// table: a map from column-value key to the handles of the tuples holding
// that value. Indexes are maintained incrementally by the tuple-mutation
// primitives in storage.go (insertTuple, removeHandle, setValues), which
// the undo log also goes through, so rollback unwinds index state for
// free. NULLs are not indexed: `col = x` is never True when col is NULL.
//
// Keyspaces. Stored values are keyed with value.KeyExact; because
// coerceRow forces every stored value to its column's declared kind, an
// index over an INTEGER column holds only exact-integer keys and an index
// over a FLOAT column holds only float-image keys. Probes arriving with
// the other numeric kind are converted by probeKey into the column's
// keyspace, reproducing value.Compare's cross-kind equality; probes the
// index cannot answer exactly (an integral float at or beyond 2^53
// probing an INTEGER column has several int64 preimages) make the lookup
// decline so the caller falls back to a heap scan.
package storage

import (
	"fmt"
	"math"
	"sort"

	"sopr/internal/catalog"
	"sopr/internal/value"
)

// secondaryIndex is the physical structure behind one CREATE INDEX.
// Bucket order is arbitrary; IndexedLookup re-orders matches by physical
// position so indexed access preserves heap-scan order.
type secondaryIndex struct {
	def     *catalog.Index
	col     int        // column position in the schema
	kind    value.Kind // declared column kind, selects the probe keyspace
	buckets map[value.Key][]Handle
}

// newSecondaryIndex builds an index over the table's current contents.
func newSecondaryIndex(def *catalog.Index, td *tableData) *secondaryIndex {
	col := td.schema.ColumnIndex(def.Column)
	ix := &secondaryIndex{
		def:     def,
		col:     col,
		kind:    td.schema.Columns[col].Type,
		buckets: make(map[value.Key][]Handle),
	}
	for _, t := range td.rows {
		ix.add(t.Values, t.Handle)
	}
	return ix
}

// clone deep-copies the index — buckets map and handle slices — for the
// copy-on-write table clone. Sharing bucket slices would let the writer's
// in-place remove (and append's spare-capacity reuse) scribble over a
// published snapshot's buckets.
func (ix *secondaryIndex) clone() *secondaryIndex {
	c := &secondaryIndex{
		def:     ix.def,
		col:     ix.col,
		kind:    ix.kind,
		buckets: make(map[value.Key][]Handle, len(ix.buckets)),
	}
	for k, b := range ix.buckets {
		nb := make([]Handle, len(b))
		copy(nb, b)
		c.buckets[k] = nb
	}
	return c
}

func (ix *secondaryIndex) add(row Row, h Handle) {
	k, ok := value.KeyExact(row[ix.col])
	if !ok {
		return // NULL is not indexed
	}
	ix.buckets[k] = append(ix.buckets[k], h)
}

func (ix *secondaryIndex) remove(row Row, h Handle) {
	k, ok := value.KeyExact(row[ix.col])
	if !ok {
		return
	}
	b := ix.buckets[k]
	for i, hh := range b {
		if hh == h {
			b[i] = b[len(b)-1]
			b = b[:len(b)-1]
			if len(b) == 0 {
				delete(ix.buckets, k)
			} else {
				ix.buckets[k] = b
			}
			return
		}
	}
}

// probeOutcome classifies what an equality probe against an index can
// establish.
type probeOutcome int

const (
	probeHit   probeOutcome = iota // the key identifies the only possible bucket
	probeEmpty                     // no stored value can compare equal to the probe
	probeScan                      // the index cannot answer exactly; fall back to scanning
)

// maxExactFloat is 2^53, the first float64 whose integer preimage under
// float64-conversion is ambiguous.
const maxExactFloat = float64(1 << 53)

// probeKey converts an equality-probe value into the keyspace of a column
// of kind ck. The contract mirrors value.Compare: a stored value compares
// equal to the probe iff its KeyExact key equals the returned key (on
// probeHit), no stored value compares equal (on probeEmpty), or the index
// cannot decide (on probeScan).
func probeKey(v value.Value, ck value.Kind) (value.Key, probeOutcome) {
	if v.IsNull() {
		return value.Key{}, probeEmpty
	}
	if v.Kind() == ck {
		k, _ := value.KeyExact(v)
		return k, probeHit
	}
	switch {
	case ck == value.KindFloat && v.Kind() == value.KindInt:
		// Compare takes the int through its float64 image; stored floats
		// match exactly when they equal that image.
		k, _ := value.KeyNumeric(v)
		return k, probeHit
	case ck == value.KindInt && v.Kind() == value.KindFloat:
		f := v.Float()
		if f != math.Trunc(f) || math.IsNaN(f) {
			// Every int64's float64 image is integral, so a non-integral
			// (or NaN) probe matches no stored integer.
			return value.Key{}, probeEmpty
		}
		if f >= maxExactFloat || f <= -maxExactFloat {
			// Several distinct int64s share this float64 image; the
			// exact-integer keyspace cannot answer the probe.
			return value.Key{}, probeScan
		}
		k, _ := value.KeyExact(value.NewInt(int64(f)))
		return k, probeHit
	default:
		// Incomparable kinds: Compare yields unknown for every stored
		// value, so the selection is provably empty.
		return value.Key{}, probeEmpty
	}
}

// CreateIndex defines a secondary hash index named name over
// table(column) and builds it from the table's current contents. Like
// other DDL it is not undoable and is rejected inside a transaction.
func (s *Store) CreateIndex(name, table, column string) error {
	if s.inTxn {
		return fmt.Errorf("storage: CREATE INDEX inside a transaction is not supported")
	}
	cat := s.cat.Clone()
	def, err := cat.CreateIndex(name, table, column)
	if err != nil {
		return err
	}
	s.cat = cat
	td := s.writable(s.tables[def.Table])
	td.indexes = append(td.indexes, newSecondaryIndex(def, td))
	s.publish()
	return nil
}

// DropIndex removes a secondary index. Not undoable; rejected inside a
// transaction.
func (s *Store) DropIndex(name string) error {
	if s.inTxn {
		return fmt.Errorf("storage: DROP INDEX inside a transaction is not supported")
	}
	def, err := s.cat.Index(name)
	if err != nil {
		return err
	}
	cat := s.cat.Clone()
	if err := cat.DropIndex(name); err != nil {
		return err
	}
	s.cat = cat
	td := s.writable(s.tables[def.Table])
	for i, ix := range td.indexes {
		if ix.def.Name == def.Name {
			td.indexes = append(td.indexes[:i], td.indexes[i+1:]...)
			break
		}
	}
	s.publish()
	return nil
}

// HasIndex reports whether a secondary index covers the given column of
// the named table. The executor's access-path pass asks this before
// spending any work computing probe values.
func (s *Store) HasIndex(table string, col int) bool {
	td, err := s.table(table)
	if err != nil {
		return false
	}
	return hasIndexOn(td, col)
}

// IndexedLookup serves the selection `table.column = v` (or, with several
// values, `column IN (v1, v2, ...)`) from a secondary index. On ok, the
// returned tuples are exactly those for which a heap scan would find the
// comparison True, in heap-scan (physical) order — indexed and scanned
// access are indistinguishable to the caller. ok is false when no index
// covers the column or some probe cannot be answered exactly; the caller
// must then fall back to scanning, and no counters move.
func (s *Store) IndexedLookup(table string, col int, vals ...value.Value) (tuples []*Tuple, ok bool, err error) {
	td, err := s.table(table)
	if err != nil {
		return nil, false, err
	}
	tuples, ok = indexedLookup(td, s.counters, col, vals...)
	return tuples, ok, nil
}

// indexedLookup is the shared body of Store.IndexedLookup and
// Snapshot.IndexedLookup, operating on one physical table representation.
func indexedLookup(td *tableData, c *accessCounters, col int, vals ...value.Value) ([]*Tuple, bool) {
	var ix *secondaryIndex
	for _, cand := range td.indexes {
		if cand.col == col {
			ix = cand
			break
		}
	}
	if ix == nil {
		return nil, false
	}
	var handles []Handle
	var seen map[value.Key]bool
	if len(vals) > 1 {
		seen = make(map[value.Key]bool, len(vals))
	}
	for _, v := range vals {
		k, outcome := probeKey(v, ix.kind)
		switch outcome {
		case probeScan:
			return nil, false
		case probeEmpty:
			continue
		}
		if seen != nil {
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		handles = append(handles, ix.buckets[k]...)
	}
	c.indexLookups.Add(1)
	if len(handles) == 0 {
		return nil, true
	}
	// Distinct keys hold disjoint handle sets, so the handles are unique;
	// sort by physical position to reproduce heap-scan order.
	sort.Slice(handles, func(i, j int) bool { return td.index[handles[i]] < td.index[handles[j]] })
	tuples := make([]*Tuple, len(handles))
	for i, h := range handles {
		tuples[i] = td.rows[td.index[h]]
	}
	return tuples, true
}

// AccessStats reports the cumulative access-path counters: full heap
// scans started (Scan calls) and selections served from a secondary
// index. The counters are atomic — lock-free snapshot readers increment
// them concurrently with the writer — so a reading taken while readers
// run returns, for each counter, a value that was current at some instant
// during the call.
func (s *Store) AccessStats() (heapScans, indexLookups int64) {
	return s.counters.heapScans.Load(), s.counters.indexLookups.Load()
}

// CheckIndexes verifies every secondary index against a from-scratch
// rebuild of the same definition, returning the first discrepancy found.
// Tests run it after randomized operation histories (including rollbacks)
// to prove incremental maintenance matches the ground truth.
func (s *Store) CheckIndexes() error {
	for name, td := range s.tables {
		for _, ix := range td.indexes {
			fresh := newSecondaryIndex(ix.def, td)
			if len(fresh.buckets) != len(ix.buckets) {
				return fmt.Errorf("storage: index %q on %q: %d live keys vs %d rebuilt",
					ix.def.Name, name, len(ix.buckets), len(fresh.buckets))
			}
			for k, want := range fresh.buckets {
				if !sameHandles(ix.buckets[k], want) {
					return fmt.Errorf("storage: index %q on %q: bucket %v: live handles %v vs rebuilt %v",
						ix.def.Name, name, k, ix.buckets[k], want)
				}
			}
		}
	}
	return nil
}

// sameHandles reports set equality of two handle slices (buckets never
// hold duplicates).
func sameHandles(a, b []Handle) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Handle(nil), a...)
	bs := append([]Handle(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
