package storage

import (
	"math/rand"
	"testing"

	"sopr/internal/value"
)

func newIndexedStore(t *testing.T) *Store {
	t.Helper()
	s := newEmpStore(t)
	if err := s.CreateIndex("emp_no_ix", "emp", "emp_no"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("emp_dept_ix", "emp", "dept_no"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateIndexMetadata(t *testing.T) {
	s := newIndexedStore(t)
	if !s.HasIndex("emp", 1) || !s.HasIndex("emp", 3) {
		t.Error("expected indexes on emp_no and dept_no")
	}
	if s.HasIndex("emp", 0) || s.HasIndex("emp", 2) {
		t.Error("unexpected index on name/salary")
	}
	// Duplicate name, unknown table, unknown column all fail.
	if err := s.CreateIndex("emp_no_ix", "emp", "salary"); err == nil {
		t.Error("duplicate index name accepted")
	}
	if err := s.CreateIndex("x", "nosuch", "a"); err == nil {
		t.Error("unknown table accepted")
	}
	if err := s.CreateIndex("x", "emp", "nosuch"); err == nil {
		t.Error("unknown column accepted")
	}
	// DDL is rejected inside a transaction, like CREATE TABLE.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("txn_ix", "emp", "salary"); err == nil {
		t.Error("CREATE INDEX inside transaction accepted")
	}
	if err := s.DropIndex("emp_no_ix"); err == nil {
		t.Error("DROP INDEX inside transaction accepted")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.DropIndex("emp_no_ix"); err != nil {
		t.Fatal(err)
	}
	if s.HasIndex("emp", 1) {
		t.Error("index survived DropIndex")
	}
	if err := s.DropIndex("emp_no_ix"); err == nil {
		t.Error("double DROP INDEX accepted")
	}
	// Dropping the table drops its indexes with it.
	if err := s.DropTable("emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Catalog().Index("emp_dept_ix"); err == nil {
		t.Error("index survived DropTable")
	}
}

// TestIndexedLookupOrder: results come back in physical heap-scan order
// even with duplicate keys and multi-value probes, so the indexed access
// path is order-identical to a scan.
func TestIndexedLookupOrder(t *testing.T) {
	s := newIndexedStore(t)
	for i := 0; i < 20; i++ {
		if _, err := s.Insert("emp", emp("e", int64(i), 0, int64(i%3))); err != nil {
			t.Fatal(err)
		}
	}
	var want []string
	if err := s.Scan("emp", func(tu *Tuple) bool {
		d := tu.Values[3].Int()
		if d == 0 || d == 2 {
			want = append(want, tu.Values[1].String())
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.IndexedLookup("emp", 3, value.NewInt(0), value.NewInt(2))
	if err != nil || !ok {
		t.Fatalf("IndexedLookup: ok=%v err=%v", ok, err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i, tu := range got {
		if tu.Values[1].String() != want[i] {
			t.Fatalf("position %d: got emp_no %s, want %s", i, tu.Values[1], want[i])
		}
	}
	// Lookup on an unindexed column declines.
	if _, ok, _ := s.IndexedLookup("emp", 2, value.NewFloat(0)); ok {
		t.Error("lookup on unindexed column did not decline")
	}
	// NULL probes identify no rows (WHERE col = NULL is never true).
	if tuples, ok, _ := s.IndexedLookup("emp", 3, value.Null); !ok || len(tuples) != 0 {
		t.Errorf("NULL probe: ok=%v n=%d, want hit with 0 rows", ok, len(tuples))
	}
}

// TestIndexMaintenanceProperty: after any randomized sequence of inserts,
// updates, deletes, rollbacks and commits, every index's contents are
// identical to a from-scratch rebuild over the heap.
func TestIndexMaintenanceProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		s := newIndexedStore(t)
		var live []Handle
		randRow := func() Row {
			r := emp("e", rng.Int63n(50), float64(rng.Intn(10)), rng.Int63n(5))
			if rng.Intn(8) == 0 {
				r[3] = value.Null
			}
			return r
		}
		step := func() {
			switch {
			case len(live) == 0 || rng.Intn(3) == 0:
				h, err := s.Insert("emp", randRow())
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, h)
			case rng.Intn(2) == 0:
				h := live[rng.Intn(len(live))]
				assign := map[int]value.Value{1: value.NewInt(rng.Int63n(50))}
				if rng.Intn(2) == 0 {
					assign[3] = value.Null
				}
				if _, _, err := s.Update(h, assign); err != nil {
					t.Fatal(err)
				}
			default:
				i := rng.Intn(len(live))
				if _, _, err := s.Delete(live[i]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		for round := 0; round < 30; round++ {
			inTxn := rng.Intn(2) == 0
			var before []Handle
			if inTxn {
				before = append([]Handle(nil), live...)
				if err := s.Begin(); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 1+rng.Intn(6); i++ {
				step()
			}
			if inTxn {
				if rng.Intn(2) == 0 {
					if err := s.Rollback(); err != nil {
						t.Fatal(err)
					}
					live = before
				} else if err := s.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.CheckIndexes(); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
		}
		// Clone carries the index definitions and rebuilds the structures.
		c := s.Clone()
		if !c.HasIndex("emp", 1) || !c.HasIndex("emp", 3) {
			t.Fatal("clone lost index definitions")
		}
		if err := c.CheckIndexes(); err != nil {
			t.Fatalf("seed %d clone: %v", seed, err)
		}
		// Mutating the clone must not disturb the original's indexes.
		if _, err := c.Insert("emp", emp("c", 99, 0, 0)); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckIndexes(); err != nil {
			t.Fatalf("seed %d original after clone mutation: %v", seed, err)
		}
	}
}

// probeKey is where cross-kind equality semantics concentrate: a float
// probe against an int column must hit exactly the rows a scan's
// value.Compare would keep.
func TestProbeKeySemantics(t *testing.T) {
	intKey := func(i int64) value.Key {
		k, ok := value.KeyExact(value.NewInt(i))
		if !ok {
			t.Fatalf("KeyExact(%d) failed", i)
		}
		return k
	}
	// Integral float within exact range converts to the int key.
	k, out := probeKey(value.NewFloat(7), value.KindInt)
	if out != probeHit || k != intKey(7) {
		t.Errorf("float 7 vs int column: out=%v key=%v", out, k)
	}
	// Non-integral float can never equal an int: provably empty.
	if _, out := probeKey(value.NewFloat(7.5), value.KindInt); out != probeEmpty {
		t.Errorf("float 7.5 vs int column: out=%v, want empty", out)
	}
	// Huge floats are ambiguous under Compare's float64 image: fall back.
	if _, out := probeKey(value.NewFloat(1<<60), value.KindInt); out != probeScan {
		t.Errorf("float 2^60 vs int column: out=%v, want scan", out)
	}
	// NULL identifies nothing.
	if _, out := probeKey(value.Null, value.KindInt); out != probeEmpty {
		t.Errorf("null probe: out=%v, want empty", out)
	}
	// Int probe against a float column goes through the float image.
	kf, out := probeKey(value.NewInt(3), value.KindFloat)
	want, _ := value.KeyExact(value.NewFloat(3))
	if out != probeHit || kf != want {
		t.Errorf("int 3 vs float column: out=%v key=%v", out, kf)
	}
	// Cross-kind non-numeric comparisons never match stored keys.
	if _, out := probeKey(value.NewString("x"), value.KindInt); out != probeEmpty {
		t.Errorf("string vs int column: out=%v, want empty", out)
	}
}
