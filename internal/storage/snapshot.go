// Snapshot reads: the lock-free half of the storage engine.
//
// Every commit (and every DDL statement) publishes an immutable
// point-in-time Snapshot behind an atomic pointer. A Snapshot captures the
// catalog and every table's physical representation (heap slice, handle
// index, secondary-index buckets) as frozen structures: once published they
// are never mutated again — the writer's first mutation of a table after a
// publish clones it (copy-on-write, see Store.writable). Readers therefore
// need no lock of any kind: loading the pointer is one atomic read, and
// everything reachable from it is immutable. The atomic store/load pair
// provides the happens-before edge that makes the frozen structures safe
// to traverse from any goroutine.
//
// Memory behavior: a publish is O(#tables) — it shallow-copies the table
// pointer map and flips the frozen flags. Table clones happen lazily on
// the write side, at most once per table per publish interval, and old
// versions stay alive only while some reader still holds the snapshot that
// references them; the garbage collector reclaims them afterwards.
package storage

import (
	"fmt"

	"sopr/internal/catalog"
	"sopr/internal/value"
)

// Snapshot is an immutable committed database state. It implements the
// executor's read interface (exec.Store) so queries and dumps run against
// it exactly as they would against the live store; the mutating methods
// fail, pinning the read-only contract at runtime as well as in the type
// system.
type Snapshot struct {
	cat      *catalog.Catalog
	tables   map[string]*tableData
	counters *accessCounters
}

// publish freezes the current tables and installs them, with the current
// catalog, as the store's published snapshot. Writer-side only.
func (s *Store) publish() *Snapshot {
	tables := make(map[string]*tableData, len(s.tables))
	for name, td := range s.tables {
		td.frozen = true
		tables[name] = td
	}
	snap := &Snapshot{cat: s.cat, tables: tables, counters: s.counters}
	s.snap.Store(snap)
	return snap
}

// Snapshot returns the currently published committed state. It is an
// atomic pointer load: safe from any goroutine, at any time, with no
// locking, concurrent with the writer.
func (s *Store) Snapshot() *Snapshot {
	return s.snap.Load()
}

// PublishSnapshot republishes the store's current state as the committed
// snapshot. Commit and DDL publish implicitly; this explicit form exists
// for the replay paths (crash recovery, replication followers), which
// mutate the store outside transactions and decide their own publication
// points. It must not be called during a transaction.
func (s *Store) PublishSnapshot() *Snapshot {
	if s.inTxn {
		panic("storage: PublishSnapshot during open transaction")
	}
	return s.publish()
}

// ---------------------------------------------------------------------------
// Shared read paths
//
// The Store (writer side, sees in-transaction state) and the Snapshot
// (reader side, frozen committed state) expose the same read operations
// over the same physical representation; these helpers are the single
// implementation both delegate to.
// ---------------------------------------------------------------------------

// lookupTable resolves a table name (normalizing case via the catalog)
// within the given table map.
func lookupTable(cat *catalog.Catalog, tables map[string]*tableData, name string) (*tableData, error) {
	td, ok := tables[name]
	if !ok {
		t, err := cat.Lookup(name)
		if err != nil {
			return nil, err
		}
		td, ok = tables[t.Name]
		if !ok {
			return nil, fmt.Errorf("storage: table %q has no data (internal error)", name)
		}
	}
	return td, nil
}

// scanTable runs fn over the table's rows in physical order, bumping the
// heap-scan counter.
func scanTable(td *tableData, c *accessCounters, fn func(*Tuple) bool) {
	c.heapScans.Add(1)
	for _, t := range td.rows {
		if !fn(t) {
			return
		}
	}
}

// hasIndexOn reports whether a secondary index covers the given column.
func hasIndexOn(td *tableData, col int) bool {
	for _, ix := range td.indexes {
		if ix.col == col {
			return true
		}
	}
	return false
}

// Catalog returns the snapshot's schema catalog (frozen: DDL replaces the
// catalog rather than mutating it).
func (sn *Snapshot) Catalog() *catalog.Catalog { return sn.cat }

func (sn *Snapshot) table(name string) (*tableData, error) {
	return lookupTable(sn.cat, sn.tables, name)
}

// Scan calls fn for every tuple of the named table, in the snapshot's
// physical order. A false return stops the scan.
func (sn *Snapshot) Scan(table string, fn func(*Tuple) bool) error {
	td, err := sn.table(table)
	if err != nil {
		return err
	}
	scanTable(td, sn.counters, fn)
	return nil
}

// Count returns the number of tuples in the named table.
func (sn *Snapshot) Count(table string) (int, error) {
	td, err := sn.table(table)
	if err != nil {
		return 0, err
	}
	return len(td.rows), nil
}

// Tuples returns the tuples of the named table sorted by handle, cloned so
// callers may mutate them freely.
func (sn *Snapshot) Tuples(table string) ([]*Tuple, error) {
	td, err := sn.table(table)
	if err != nil {
		return nil, err
	}
	return sortedTupleClones(td), nil
}

// Get returns the tuple with the given handle, searching every table.
// Snapshots carry no handle directory (copying it would make publishes
// O(#handles)); Get is a test/tooling convenience, not a hot path.
func (sn *Snapshot) Get(h Handle) (*Tuple, bool) {
	for _, td := range sn.tables {
		if pos, ok := td.index[h]; ok {
			return td.rows[pos], true
		}
	}
	return nil, false
}

// HasIndex reports whether a secondary index covers the given column of
// the named table.
func (sn *Snapshot) HasIndex(table string, col int) bool {
	td, err := sn.table(table)
	if err != nil {
		return false
	}
	return hasIndexOn(td, col)
}

// IndexedLookup serves an equality/IN selection from a secondary index
// (see Store.IndexedLookup for the contract).
func (sn *Snapshot) IndexedLookup(table string, col int, vals ...value.Value) ([]*Tuple, bool, error) {
	td, err := sn.table(table)
	if err != nil {
		return nil, false, err
	}
	tuples, ok := indexedLookup(td, sn.counters, col, vals...)
	return tuples, ok, nil
}

// AccessStats reports the shared atomic access-path counters (the same
// pair the owning Store reports).
func (sn *Snapshot) AccessStats() (heapScans, indexLookups int64) {
	return sn.counters.heapScans.Load(), sn.counters.indexLookups.Load()
}

// errReadOnly constructs the error the mutating half of the exec.Store
// interface returns on a snapshot.
func errReadOnly(op string) error {
	return fmt.Errorf("storage: %s on a read-only snapshot", op)
}

// Insert implements the exec.Store interface; snapshots are read-only.
func (sn *Snapshot) Insert(table string, row Row) (Handle, error) {
	return 0, errReadOnly("insert")
}

// Delete implements the exec.Store interface; snapshots are read-only.
func (sn *Snapshot) Delete(h Handle) (string, Row, error) {
	return "", nil, errReadOnly("delete")
}

// Update implements the exec.Store interface; snapshots are read-only.
func (sn *Snapshot) Update(h Handle, assign map[int]value.Value) (string, Row, error) {
	return "", nil, errReadOnly("update")
}
