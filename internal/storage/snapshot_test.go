package storage

import (
	"math/rand"
	"testing"

	"sopr/internal/catalog"
	"sopr/internal/value"
)

// TestSnapshotIsolation pins the core MVCC contract: a snapshot taken at
// publish time is a frozen point-in-time image. Later inserts, updates,
// deletes and DDL are invisible to it, while a fresh snapshot sees them.
func TestSnapshotIsolation(t *testing.T) {
	s := newEmpStore(t)
	h1, _ := s.Insert("emp", emp("jane", 1, 100, 1))
	h2, _ := s.Insert("emp", emp("mary", 2, 90, 1))
	old := s.PublishSnapshot()

	// Mutate the store in every way after the snapshot.
	if _, _, err := s.Update(h1, map[int]value.Value{2: value.NewFloat(777)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Delete(h2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("emp", emp("newhire", 3, 50, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("emp_dept", "emp", "dept_no"); err != nil {
		t.Fatal(err)
	}

	// The old snapshot still shows the original two rows, original values,
	// and no index.
	if c, _ := old.Count("emp"); c != 2 {
		t.Fatalf("old snapshot Count = %d, want 2", c)
	}
	tup, ok := old.Get(h1)
	if !ok || tup.Values[2].Float() != 100 {
		t.Fatalf("old snapshot Get(h1) = %v, %v; want salary 100", tup, ok)
	}
	if _, ok := old.Get(h2); !ok {
		t.Fatal("old snapshot lost deleted-later tuple")
	}
	if old.HasIndex("emp", 3) {
		t.Fatal("old snapshot sees index created after publish")
	}

	// A fresh snapshot sees everything.
	cur := s.Snapshot()
	if c, _ := cur.Count("emp"); c != 2 {
		t.Fatalf("current snapshot Count = %d, want 2", c)
	}
	tup, ok = cur.Get(h1)
	if !ok || tup.Values[2].Float() != 777 {
		t.Fatalf("current snapshot Get(h1) = %v, want salary 777", tup)
	}
	if _, ok := cur.Get(h2); ok {
		t.Fatal("current snapshot still has deleted tuple")
	}
	if !cur.HasIndex("emp", 3) {
		t.Fatal("current snapshot missing new index")
	}
	got, used, err := cur.IndexedLookup("emp", 3, value.NewInt(2))
	if err != nil || !used || len(got) != 1 || got[0].Values[0].Str() != "newhire" {
		t.Fatalf("current snapshot IndexedLookup = %v used=%v err=%v", got, used, err)
	}
}

// TestSnapshotUnaffectedByRolledBackTxn checks that a snapshot taken
// before a transaction never observes its uncommitted effects, and that
// rollback leaves the published snapshot byte-for-byte intact.
func TestSnapshotUnaffectedByRolledBackTxn(t *testing.T) {
	s := newEmpStore(t)
	h, _ := s.Insert("emp", emp("jane", 1, 100, 1))
	old := s.PublishSnapshot()

	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Update(h, map[int]value.Value{2: value.NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("emp", emp("ghost", 9, 9, 9)); err != nil {
		t.Fatal(err)
	}
	if tup, _ := old.Get(h); tup.Values[2].Float() != 100 {
		t.Fatal("snapshot observed uncommitted update")
	}
	if c, _ := old.Count("emp"); c != 1 {
		t.Fatal("snapshot observed uncommitted insert")
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if tup, _ := s.Get(h); tup.Values[2].Float() != 100 {
		t.Fatal("rollback did not restore salary")
	}
	if c, _ := s.Count("emp"); c != 1 {
		t.Fatalf("rollback left wrong row count")
	}
}

// TestSnapshotReadOnly: the mutating half of the exec.Store interface is
// stubbed out on snapshots with explicit errors.
func TestSnapshotReadOnly(t *testing.T) {
	s := newEmpStore(t)
	h, _ := s.Insert("emp", emp("jane", 1, 100, 1))
	sn := s.PublishSnapshot()
	if _, err := sn.Insert("emp", emp("x", 2, 2, 2)); err == nil {
		t.Error("snapshot Insert succeeded")
	}
	if _, _, err := sn.Delete(h); err == nil {
		t.Error("snapshot Delete succeeded")
	}
	if _, _, err := sn.Update(h, map[int]value.Value{2: value.NewFloat(0)}); err == nil {
		t.Error("snapshot Update succeeded")
	}
	if c, _ := sn.Count("emp"); c != 1 {
		t.Fatalf("failed mutations changed snapshot: Count = %d", c)
	}
}

// TestAbsentHandleGuards is the satellite-1 regression test. The old
// storage layer looked up td.index[h] without the ok check; an absent
// handle yielded map-zero position 0 and silently removed or overwrote
// whatever tuple happened to sit there. Every path that resolves a handle
// to a position — forward ops, undo compensation, WAL replay — must now
// fail loudly and leave the table untouched.
func TestAbsentHandleGuards(t *testing.T) {
	s := newEmpStore(t)
	h1, _ := s.Insert("emp", emp("jane", 1, 100, 1))
	h2, _ := s.Insert("emp", emp("mary", 2, 90, 1))
	bogus := Handle(9999)

	check := func(what string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s of absent handle succeeded", what)
		}
		// The victim of the old bug: the tuple at position 0 must survive.
		if c, _ := s.Count("emp"); c != 2 {
			t.Fatalf("%s of absent handle changed row count to %d", what, c)
		}
		for _, h := range []Handle{h1, h2} {
			tup, ok := s.Get(h)
			if !ok {
				t.Fatalf("%s of absent handle removed live handle %d", what, h)
			}
			if tup.Values[2].Float() != 100 && tup.Values[2].Float() != 90 {
				t.Fatalf("%s of absent handle corrupted values: %v", what, tup.Values)
			}
		}
	}

	// Direct primitives (the layer every path funnels through).
	td := s.tables["emp"]
	_, err := s.applyRemove(td, bogus)
	check("applyRemove", err)
	check("applySet", s.applySet(td, bogus, emp("evil", 0, 0, 0)))

	// Forward operations.
	_, _, err = s.Delete(bogus)
	check("Delete", err)
	_, _, err = s.Update(bogus, map[int]value.Value{2: value.NewFloat(0)})
	check("Update", err)

	// WAL replay path.
	check("ReplayDelete", s.ReplayDelete(bogus))
	check("ReplaySet", s.ReplaySet(bogus, emp("evil", 0, 0, 0)))

	// Rollback path: an undo record whose handle is no longer present must
	// surface as a rollback error, not a silent position-0 removal. Forge
	// the record directly — the forward API cannot produce this state, which
	// is exactly why the old fall-through went unnoticed.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	s.undo = append(s.undo, undoRec{kind: undoInsert, table: "emp", handle: bogus})
	err = s.Rollback()
	if err == nil {
		t.Fatal("rollback compensating an absent handle succeeded")
	}
	s.inTxn = false
	s.undo = s.undo[:0]
	check("rollback-compensation", err)

	// Same through the undoUpdate compensation.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	s.undo = append(s.undo, undoRec{kind: undoUpdate, table: "emp", handle: bogus, oldRow: emp("evil", 0, 0, 0)})
	err = s.Rollback()
	if err == nil {
		t.Fatal("rollback undoUpdate of absent handle succeeded")
	}
	s.inTxn = false
	s.undo = s.undo[:0]
	check("rollback-undoUpdate", err)
}

// TestHandleDirectoryProperty is the satellite-2 property test: after any
// randomized sequence of inserts, updates, deletes, transactions
// (committed and rolled back) and DDL, the store-level handle directory
// agrees exactly with a full scan of every table — the single map lookup
// that replaced the O(#tables) find must never drift from ground truth.
func TestHandleDirectoryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x50fd))
	s := New()
	for _, name := range []string{"t1", "t2", "t3"} {
		tab, err := catalog.NewTable(name, []catalog.Column{
			{Name: "k", Type: value.KindInt},
			{Name: "v", Type: value.KindString},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	tables := []string{"t1", "t2", "t3"}
	var live []Handle

	row := func() Row {
		return Row{value.NewInt(rng.Int63n(100)), value.NewString("v")}
	}
	removeLive := func(h Handle) {
		for i, l := range live {
			if l == h {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				return
			}
		}
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			h, err := s.Insert(tables[rng.Intn(len(tables))], row())
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, h)
		case op < 6 && len(live) > 0: // delete
			h := live[rng.Intn(len(live))]
			if _, _, err := s.Delete(h); err != nil {
				t.Fatal(err)
			}
			removeLive(h)
		case op < 8 && len(live) > 0: // update
			h := live[rng.Intn(len(live))]
			if _, _, err := s.Update(h, map[int]value.Value{0: value.NewInt(rng.Int63n(100))}); err != nil {
				t.Fatal(err)
			}
		case op == 8: // a small transaction, committed or rolled back
			if err := s.Begin(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := s.Insert(tables[rng.Intn(len(tables))], row()); err != nil {
					t.Fatal(err)
				}
			}
			if len(live) > 0 {
				if _, _, err := s.Delete(live[rng.Intn(len(live))]); err != nil {
					t.Fatal(err)
				}
			}
			var err error
			if rng.Intn(2) == 0 {
				err = s.Commit()
			} else {
				err = s.Rollback()
			}
			if err != nil {
				t.Fatal(err)
			}
			// The victim list above only picks targets; rebuild the live
			// set from ground truth — the invariants below re-derive it
			// from scans anyway.
			live = scanAllHandles(s, tables)
		default: // occasionally publish, so COW paths get exercised
			s.PublishSnapshot()
		}

		// Invariant 1: the directory's own bidirectional audit.
		if err := s.CheckHandleIndex(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// Invariant 2: find agrees with a full scan for live and dead
		// handles alike.
		truth := map[Handle]string{}
		for _, name := range tables {
			s.Scan(name, func(tup *Tuple) bool {
				truth[tup.Handle] = tup.Table
				return true
			})
		}
		for h := Handle(1); h <= s.next; h++ {
			tup, ok := s.Get(h)
			wantTable, wantOK := truth[h]
			if ok != wantOK {
				t.Fatalf("step %d: Get(%d) ok=%v, scan says %v", step, h, ok, wantOK)
			}
			if ok && tup.Table != wantTable {
				t.Fatalf("step %d: Get(%d) table %q, scan says %q", step, h, tup.Table, wantTable)
			}
		}
	}
}

func scanAllHandles(s *Store, tables []string) []Handle {
	var hs []Handle
	for _, name := range tables {
		s.Scan(name, func(tup *Tuple) bool {
			hs = append(hs, tup.Handle)
			return true
		})
	}
	return hs
}

// TestTuplesReturnsClones is the satellite-3 regression test: Tuples (on
// the store and on snapshots) must hand out deep copies. The old code
// returned live *Tuple pointers, so a caller scribbling on Values mutated
// committed state behind the engine's back.
func TestTuplesReturnsClones(t *testing.T) {
	s := newEmpStore(t)
	h, _ := s.Insert("emp", emp("jane", 1, 100, 1))

	tups, err := s.Tuples("emp")
	if err != nil || len(tups) != 1 {
		t.Fatalf("Tuples = %v, %v", tups, err)
	}
	tups[0].Values[0] = value.NewString("scribbled")
	tups[0].Values[2] = value.NewFloat(-1)

	if tup, _ := s.Get(h); tup.Values[0].Str() != "jane" || tup.Values[2].Float() != 100 {
		t.Fatalf("mutating Tuples result changed stored state: %v", tup.Values)
	}

	sn := s.PublishSnapshot()
	stups, err := sn.Tuples("emp")
	if err != nil || len(stups) != 1 {
		t.Fatalf("snapshot Tuples = %v, %v", stups, err)
	}
	stups[0].Values[0] = value.NewString("scribbled-again")
	if tup, _ := sn.Get(h); tup.Values[0].Str() != "jane" {
		t.Fatalf("mutating snapshot Tuples result changed snapshot state: %v", tup.Values)
	}
	if tup, _ := s.Get(h); tup.Values[0].Str() != "jane" {
		t.Fatalf("mutating snapshot Tuples result changed store state: %v", tup.Values)
	}
}

// TestSnapshotSharesAccessCounters: snapshots feed the same atomic
// access-path counters as the store, so Stats over a snapshot read path
// still counts scans and index lookups.
func TestSnapshotSharesAccessCounters(t *testing.T) {
	s := newEmpStore(t)
	s.Insert("emp", emp("jane", 1, 100, 1))
	sn := s.PublishSnapshot()
	h0, _ := s.AccessStats()
	sn.Scan("emp", func(*Tuple) bool { return true })
	h1, _ := s.AccessStats()
	if h1 != h0+1 {
		t.Fatalf("snapshot scan not counted: %d -> %d", h0, h1)
	}
}

// TestPublishSnapshotInTxnPanics: publishing mid-transaction would leak
// uncommitted state into the lock-free read path.
func TestPublishSnapshotInTxnPanics(t *testing.T) {
	s := newEmpStore(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PublishSnapshot inside a transaction did not panic")
		}
	}()
	s.PublishSnapshot()
}
