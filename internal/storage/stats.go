// Per-column statistics for the cost-based planner.
//
// Every table maintains, for each column, the exact number of NULLs and an
// exact distinct-value histogram (a count per value.KeyExact key). The
// statistics are updated incrementally by the same three tuple-mutation
// primitives that maintain secondary indexes and the handle directory
// (applyInsert, applyRemove, applySet), which the undo log and the WAL
// replay primitives also go through — so stats stay exact under rollback
// and crash recovery with no extra machinery, and CheckStats can verify
// them against a from-scratch rebuild after any operation history.
//
// The planner consumes them through ColumnStats (cardinality and distinct
// counts drive join ordering and selectivity estimates) and ClassifyProbe
// (whether an equality probe can be served by an index, including the
// 2^53 integer-keyspace fallback that must be costed as a scan).
package storage

import (
	"fmt"

	"sopr/internal/value"
)

// colStats is the exact per-column statistic: a count per distinct non-NULL
// value key plus the NULL count. Distinct cardinality is len(distinct).
type colStats struct {
	distinct map[value.Key]int
	nulls    int
}

func newColStats() *colStats {
	return &colStats{distinct: make(map[value.Key]int)}
}

func (cs *colStats) add(v value.Value) {
	k, ok := value.KeyExact(v)
	if !ok {
		cs.nulls++
		return
	}
	cs.distinct[k]++
}

func (cs *colStats) remove(v value.Value) {
	k, ok := value.KeyExact(v)
	if !ok {
		cs.nulls--
		return
	}
	if n := cs.distinct[k]; n <= 1 {
		delete(cs.distinct, k)
	} else {
		cs.distinct[k] = n - 1
	}
}

func (cs *colStats) clone() *colStats {
	c := &colStats{distinct: make(map[value.Key]int, len(cs.distinct)), nulls: cs.nulls}
	for k, n := range cs.distinct {
		c.distinct[k] = n
	}
	return c
}

// newTableStats allocates empty column statistics for a schema.
func newTableStats(n int) []*colStats {
	stats := make([]*colStats, n)
	for i := range stats {
		stats[i] = newColStats()
	}
	return stats
}

func (td *tableData) statsAdd(row Row) {
	for i, cs := range td.stats {
		cs.add(row[i])
	}
}

func (td *tableData) statsRemove(row Row) {
	for i, cs := range td.stats {
		cs.remove(row[i])
	}
}

// ColStats is the planner-facing view of one column's statistics.
type ColStats struct {
	Rows     int // table cardinality
	Distinct int // distinct non-NULL values
	Nulls    int // NULL count
}

// columnStats is the shared body of Store.ColumnStats and
// Snapshot.ColumnStats.
func columnStats(td *tableData, col int) (ColStats, error) {
	if col < 0 || col >= len(td.stats) {
		return ColStats{}, fmt.Errorf("storage: column index %d out of range for table %q", col, td.schema.Name)
	}
	cs := td.stats[col]
	return ColStats{Rows: len(td.rows), Distinct: len(cs.distinct), Nulls: cs.nulls}, nil
}

// ColumnStats returns exact cardinality/distinct/null statistics for one
// column of the named table.
func (s *Store) ColumnStats(table string, col int) (ColStats, error) {
	td, err := s.table(table)
	if err != nil {
		return ColStats{}, err
	}
	return columnStats(td, col)
}

// ColumnStats returns exact cardinality/distinct/null statistics for one
// column of the named table, as of the snapshot.
func (sn *Snapshot) ColumnStats(table string, col int) (ColStats, error) {
	td, err := sn.table(table)
	if err != nil {
		return ColStats{}, err
	}
	return columnStats(td, col)
}

// ProbeClass classifies, at plan time, how an index equality probe on a
// column would be served.
type ProbeClass int

const (
	// ProbeNoIndex: no secondary index covers the column; only a scan can
	// serve the selection.
	ProbeNoIndex ProbeClass = iota
	// ProbeIndexed: the index answers the probe exactly (including the
	// provably-empty case).
	ProbeIndexed
	// ProbeFallback: an index exists but cannot answer this probe exactly
	// (an integral float at or beyond 2^53 probing an INTEGER column has
	// several int64 preimages); execution falls back to a heap scan, and
	// the planner must cost it as one.
	ProbeFallback
)

func (p ProbeClass) String() string {
	switch p {
	case ProbeNoIndex:
		return "no-index"
	case ProbeIndexed:
		return "indexed"
	case ProbeFallback:
		return "index-fallback-scan"
	default:
		return fmt.Sprintf("ProbeClass(%d)", int(p))
	}
}

// classifyProbe is the shared body of Store.ClassifyProbe and
// Snapshot.ClassifyProbe.
func classifyProbe(td *tableData, col int, vals []value.Value) ProbeClass {
	var ix *secondaryIndex
	for _, cand := range td.indexes {
		if cand.col == col {
			ix = cand
			break
		}
	}
	if ix == nil {
		return ProbeNoIndex
	}
	for _, v := range vals {
		if _, outcome := probeKey(v, ix.kind); outcome == probeScan {
			return ProbeFallback
		}
	}
	return ProbeIndexed
}

// ClassifyProbe reports how an equality/IN probe with the given values
// against table.column would be served, without executing it. The planner
// uses this to cost the 2^53 integer-keyspace fallback explicitly instead
// of discovering it at execution time.
func (s *Store) ClassifyProbe(table string, col int, vals ...value.Value) ProbeClass {
	td, err := s.table(table)
	if err != nil {
		return ProbeNoIndex
	}
	return classifyProbe(td, col, vals)
}

// ClassifyProbe is the snapshot-side ClassifyProbe (see Store.ClassifyProbe).
func (sn *Snapshot) ClassifyProbe(table string, col int, vals ...value.Value) ProbeClass {
	td, err := sn.table(table)
	if err != nil {
		return ProbeNoIndex
	}
	return classifyProbe(td, col, vals)
}

// CheckStats verifies every table's incremental column statistics against a
// from-scratch recount of the heap, returning the first discrepancy. Like
// CheckIndexes, tests run it after randomized operation histories
// (rollbacks, replays, clones) to prove incremental maintenance exact.
func (s *Store) CheckStats() error {
	for name, td := range s.tables {
		if len(td.stats) != len(td.schema.Columns) {
			return fmt.Errorf("storage: stats for %q cover %d columns, schema has %d",
				name, len(td.stats), len(td.schema.Columns))
		}
		fresh := newTableStats(len(td.schema.Columns))
		for _, t := range td.rows {
			for i, cs := range fresh {
				cs.add(t.Values[i])
			}
		}
		for i, want := range fresh {
			got := td.stats[i]
			if got.nulls != want.nulls {
				return fmt.Errorf("storage: stats for %s.%s: %d live nulls vs %d recounted",
					name, td.schema.Columns[i].Name, got.nulls, want.nulls)
			}
			if len(got.distinct) != len(want.distinct) {
				return fmt.Errorf("storage: stats for %s.%s: %d live distinct keys vs %d recounted",
					name, td.schema.Columns[i].Name, len(got.distinct), len(want.distinct))
			}
			for k, n := range want.distinct {
				if got.distinct[k] != n {
					return fmt.Errorf("storage: stats for %s.%s: key %v counted %d live vs %d recounted",
						name, td.schema.Columns[i].Name, k, got.distinct[k], n)
				}
			}
		}
	}
	return nil
}
