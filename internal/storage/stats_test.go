package storage

import (
	"math/rand"
	"testing"

	"sopr/internal/value"
)

// TestStatsMaintenanceProperty: after any randomized sequence of inserts,
// updates, deletes, rollbacks and commits, every column's incremental
// cardinality statistics are identical to a from-scratch recount of the
// heap — the planner's inputs can never drift from the data. Mirrors
// TestIndexMaintenanceProperty, plus replay-primitive and
// snapshot-publication legs.
func TestStatsMaintenanceProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		s := newIndexedStore(t)
		var live []Handle
		randRow := func() Row {
			r := emp("e", rng.Int63n(50), float64(rng.Intn(10)), rng.Int63n(5))
			if rng.Intn(8) == 0 {
				r[3] = value.Null
			}
			if rng.Intn(8) == 0 {
				r[0] = value.Null
			}
			return r
		}
		step := func() {
			switch {
			case len(live) == 0 || rng.Intn(3) == 0:
				h, err := s.Insert("emp", randRow())
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, h)
			case rng.Intn(2) == 0:
				h := live[rng.Intn(len(live))]
				assign := map[int]value.Value{1: value.NewInt(rng.Int63n(50))}
				if rng.Intn(2) == 0 {
					assign[3] = value.Null
				}
				if _, _, err := s.Update(h, assign); err != nil {
					t.Fatal(err)
				}
			default:
				i := rng.Intn(len(live))
				if _, _, err := s.Delete(live[i]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		for round := 0; round < 30; round++ {
			inTxn := rng.Intn(2) == 0
			var before []Handle
			if inTxn {
				before = append([]Handle(nil), live...)
				if err := s.Begin(); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 1+rng.Intn(6); i++ {
				step()
			}
			if inTxn {
				if rng.Intn(2) == 0 {
					if err := s.Rollback(); err != nil {
						t.Fatal(err)
					}
					live = before
				} else if err := s.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.CheckStats(); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
		}

		// WAL-replay primitives route through the same mutation paths, so
		// stats must stay exact under them too.
		h := s.NextHandle() + 7 // gaps are legal: handles are monotone, not dense
		if err := s.ReplayInsert("emp", h, randRow()); err != nil {
			t.Fatal(err)
		}
		if err := s.ReplaySet(h, emp("r", 3, 1, 2)); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckStats(); err != nil {
			t.Fatalf("seed %d after replay insert+set: %v", seed, err)
		}
		if err := s.ReplayDelete(h); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckStats(); err != nil {
			t.Fatalf("seed %d after replay delete: %v", seed, err)
		}

		// Snapshot publication freezes stats with the data: the snapshot
		// keeps reporting the published counts while the writer moves on.
		snap := s.PublishSnapshot()
		pubRows, err := snap.Count("emp")
		if err != nil {
			t.Fatal(err)
		}
		pub, err := snap.ColumnStats("emp", 3)
		if err != nil {
			t.Fatal(err)
		}
		if pub.Rows != pubRows {
			t.Fatalf("seed %d: snapshot stats rows %d vs count %d", seed, pub.Rows, pubRows)
		}
		nh, err := s.Insert("emp", emp("post-publish", 77, 0, 4))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Update(nh, map[int]value.Value{3: value.Null}); err != nil {
			t.Fatal(err)
		}
		after, err := snap.ColumnStats("emp", 3)
		if err != nil {
			t.Fatal(err)
		}
		if after != pub {
			t.Fatalf("seed %d: published snapshot stats moved: %+v vs %+v", seed, after, pub)
		}
		liveStats, err := s.ColumnStats("emp", 3)
		if err != nil {
			t.Fatal(err)
		}
		if liveStats.Rows != pub.Rows+1 || liveStats.Nulls != pub.Nulls+1 {
			t.Fatalf("seed %d: live stats %+v did not track post-publish writes (published %+v)", seed, liveStats, pub)
		}
		if err := s.CheckStats(); err != nil {
			t.Fatalf("seed %d after publish+mutate: %v", seed, err)
		}

		// Clone rebuilds stats through applyInsert; mutating the clone must
		// not disturb the original.
		c := s.Clone()
		if err := c.CheckStats(); err != nil {
			t.Fatalf("seed %d clone: %v", seed, err)
		}
		if _, err := c.Insert("emp", emp("c", 99, 0, 0)); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckStats(); err != nil {
			t.Fatalf("seed %d original after clone mutation: %v", seed, err)
		}
	}
}

// TestClassifyProbe pins the planner's plan-time access classification,
// including the 2^53 integer-keyspace fallback that must be costed as a
// scan rather than silently degrading at execution time.
func TestClassifyProbe(t *testing.T) {
	s := newIndexedStore(t) // indexes on emp_no (col 1, INTEGER) and dept_no (col 3, INTEGER)
	if got := s.ClassifyProbe("emp", 2, value.NewFloat(1)); got != ProbeNoIndex {
		t.Errorf("unindexed column: %v, want %v", got, ProbeNoIndex)
	}
	if got := s.ClassifyProbe("emp", 1, value.NewInt(7)); got != ProbeIndexed {
		t.Errorf("int probe: %v, want %v", got, ProbeIndexed)
	}
	if got := s.ClassifyProbe("emp", 1, value.NewFloat(7.5)); got != ProbeIndexed {
		t.Errorf("provably-empty probe: %v, want %v (index answers it exactly)", got, ProbeIndexed)
	}
	if got := s.ClassifyProbe("emp", 1, value.NewFloat(1<<60)); got != ProbeFallback {
		t.Errorf("2^60 float probe on INTEGER index: %v, want %v", got, ProbeFallback)
	}
	if got := s.ClassifyProbe("emp", 1, value.NewInt(1), value.NewFloat(1<<60)); got != ProbeFallback {
		t.Errorf("mixed IN with one unanswerable probe: %v, want %v", got, ProbeFallback)
	}
	snap := s.PublishSnapshot()
	if got := snap.ClassifyProbe("emp", 1, value.NewFloat(1<<60)); got != ProbeFallback {
		t.Errorf("snapshot 2^60 probe: %v, want %v", got, ProbeFallback)
	}
}
