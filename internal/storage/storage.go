// Package storage implements the in-memory relational storage engine
// underneath the rule system: heap tables holding multisets of tuples,
// system tuple handles, and an undo log providing transaction rollback.
//
// Following the paper (Section 2), every tuple carries a "system tuple
// handle — a distinct, non-reusable value identifying the tuple and its
// containing table". Handles are allocated from a monotonically increasing
// counter and are never reused, even across rolled-back transactions.
// Duplicate tuples may appear in a table; each occupies its own handle.
package storage

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sopr/internal/catalog"
	"sopr/internal/value"
)

// Handle is a system tuple handle (Section 2 of the paper): a distinct,
// non-reusable identifier for a tuple and its containing table. Handle 0 is
// never allocated and means "no tuple".
type Handle uint64

// Row is a tuple's column values, in schema order. Rows handed out by the
// store are snapshots; callers must not mutate them.
type Row []value.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Equal reports value-wise equality (NULL equal to NULL).
func (r Row) Equal(s Row) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if !r[i].Equal(s[i]) {
			return false
		}
	}
	return true
}

// String renders the row as (v1, v2, ...).
func (r Row) String() string {
	out := "("
	for i, v := range r {
		if i > 0 {
			out += ", "
		}
		out += v.String()
	}
	return out + ")"
}

// Tuple is a stored tuple: its handle, containing table, and current values.
type Tuple struct {
	Handle Handle
	Table  string
	Values Row
}

// tableData is the physical representation of one table: a slice of tuples
// (duplicates allowed) plus a handle index. Deletion swaps with the last
// element, so scan order is deterministic for a given operation history but
// not insertion-ordered.
type tableData struct {
	schema  *catalog.Table
	rows    []*Tuple
	index   map[Handle]int
	indexes []*secondaryIndex
}

// undoKind discriminates undo-log records.
type undoKind int

const (
	undoInsert undoKind = iota // compensate by deleting the handle
	undoDelete                 // compensate by re-inserting the tuple
	undoUpdate                 // compensate by restoring old values
)

type undoRec struct {
	kind   undoKind
	handle Handle
	table  string
	oldRow Row // for undoDelete (full tuple) and undoUpdate (pre-image)
}

// Store is the storage engine. It is not safe for concurrent mutation; the
// paper's model of system execution is a single stream of operation blocks
// with concurrency "transparent" below the abstraction (Section 2.1).
// Read-only methods (Scan, Get, Count, Tuples, IndexedLookup, HasIndex,
// AccessStats, and catalog lookups) may run concurrently with each other
// as long as no mutation is in flight — the contract SynchronizedDB's
// reader-writer lock provides. The only state they touch is the
// access-path counter pair, which is atomic for exactly that reason.
type Store struct {
	cat    *catalog.Catalog
	next   Handle
	tables map[string]*tableData
	undo   []undoRec
	inTxn  bool

	// Access-path counters, reported by AccessStats. Atomic because the
	// read path increments them: concurrent queries under a shared lock
	// must not race with each other (or with a Stats snapshot).
	heapScans    atomic.Int64
	indexLookups atomic.Int64
}

// New returns an empty store with its own catalog.
func New() *Store {
	return &Store{
		cat:    catalog.New(),
		tables: make(map[string]*tableData),
	}
}

// Catalog returns the store's schema catalog.
func (s *Store) Catalog() *catalog.Catalog { return s.cat }

// CreateTable registers a new table. DDL is not undoable and is rejected
// inside a transaction.
func (s *Store) CreateTable(t *catalog.Table) error {
	if s.inTxn {
		return fmt.Errorf("storage: CREATE TABLE inside a transaction is not supported")
	}
	if err := s.cat.Create(t); err != nil {
		return err
	}
	s.tables[t.Name] = &tableData{schema: t, index: make(map[Handle]int)}
	return nil
}

// DropTable removes a table and all its tuples. Not undoable.
func (s *Store) DropTable(name string) error {
	if s.inTxn {
		return fmt.Errorf("storage: DROP TABLE inside a transaction is not supported")
	}
	if err := s.cat.Drop(name); err != nil {
		return err
	}
	delete(s.tables, name)
	return nil
}

func (s *Store) table(name string) (*tableData, error) {
	td, ok := s.tables[name]
	if !ok {
		// The catalog normalizes case; retry via catalog lookup.
		t, err := s.cat.Lookup(name)
		if err != nil {
			return nil, err
		}
		td, ok = s.tables[t.Name]
		if !ok {
			return nil, fmt.Errorf("storage: table %q has no data (internal error)", name)
		}
	}
	return td, nil
}

// Begin starts a transaction. Nested transactions are not supported: the
// paper's transaction is one external operation block plus its
// rule-generated blocks, all undone together on rollback.
func (s *Store) Begin() error {
	if s.inTxn {
		return fmt.Errorf("storage: transaction already in progress")
	}
	s.inTxn = true
	s.undo = s.undo[:0]
	return nil
}

// InTxn reports whether a transaction is open.
func (s *Store) InTxn() bool { return s.inTxn }

// Commit ends the transaction, discarding the undo log.
func (s *Store) Commit() error {
	if !s.inTxn {
		return fmt.Errorf("storage: no transaction in progress")
	}
	s.inTxn = false
	s.undo = s.undo[:0]
	return nil
}

// Rollback undoes every change of the current transaction, in reverse
// order, restoring the pre-transaction state. Handles allocated during the
// transaction are not reused afterwards.
func (s *Store) Rollback() error {
	if !s.inTxn {
		return fmt.Errorf("storage: no transaction in progress")
	}
	for i := len(s.undo) - 1; i >= 0; i-- {
		rec := s.undo[i]
		td := s.tables[rec.table]
		switch rec.kind {
		case undoInsert:
			td.removeHandle(rec.handle)
		case undoDelete:
			td.insertTuple(&Tuple{Handle: rec.handle, Table: rec.table, Values: rec.oldRow})
		case undoUpdate:
			td.setValues(rec.handle, rec.oldRow)
		}
	}
	s.inTxn = false
	s.undo = s.undo[:0]
	return nil
}

// insertTuple, removeHandle and setValues are the only primitives that
// mutate a table's tuples. Both forward operations and the undo log's
// compensations go through them, so secondary indexes stay in sync on
// commit and rollback alike.

func (td *tableData) insertTuple(t *Tuple) {
	td.index[t.Handle] = len(td.rows)
	td.rows = append(td.rows, t)
	for _, ix := range td.indexes {
		ix.add(t.Values, t.Handle)
	}
}

func (td *tableData) removeHandle(h Handle) {
	pos := td.index[h]
	t := td.rows[pos]
	last := len(td.rows) - 1
	if pos != last {
		td.rows[pos] = td.rows[last]
		td.index[td.rows[pos].Handle] = pos
	}
	td.rows = td.rows[:last]
	delete(td.index, h)
	for _, ix := range td.indexes {
		ix.remove(t.Values, h)
	}
}

// setValues replaces the values of the tuple with handle h in place,
// re-keying secondary indexes for the changed row.
func (td *tableData) setValues(h Handle, next Row) {
	t := td.rows[td.index[h]]
	for _, ix := range td.indexes {
		ix.remove(t.Values, h)
		ix.add(next, h)
	}
	t.Values = next
}

// coerceRow validates and coerces a row against the table schema.
func coerceRow(schema *catalog.Table, row Row) (Row, error) {
	if len(row) != len(schema.Columns) {
		return nil, fmt.Errorf("storage: table %q expects %d values, got %d",
			schema.Name, len(schema.Columns), len(row))
	}
	out := make(Row, len(row))
	for i, v := range row {
		col := schema.Columns[i]
		if v.IsNull() {
			if col.NotNull {
				return nil, fmt.Errorf("storage: NULL in NOT NULL column %s.%s", schema.Name, col.Name)
			}
			out[i] = v
			continue
		}
		cv, err := value.Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("storage: column %s.%s: %v", schema.Name, col.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// Insert adds a tuple to the named table and returns its fresh handle.
func (s *Store) Insert(table string, row Row) (Handle, error) {
	td, err := s.table(table)
	if err != nil {
		return 0, err
	}
	vals, err := coerceRow(td.schema, row)
	if err != nil {
		return 0, err
	}
	s.next++
	h := s.next
	td.insertTuple(&Tuple{Handle: h, Table: td.schema.Name, Values: vals})
	if s.inTxn {
		s.undo = append(s.undo, undoRec{kind: undoInsert, handle: h, table: td.schema.Name})
	}
	return h, nil
}

// Delete removes the tuple with the given handle, returning its final
// values. It fails if the handle does not identify a live tuple.
func (s *Store) Delete(h Handle) (table string, old Row, err error) {
	t, ok := s.find(h)
	if !ok {
		return "", nil, fmt.Errorf("storage: delete of unknown handle %d", h)
	}
	td := s.tables[t.Table]
	old = t.Values
	td.removeHandle(h)
	if s.inTxn {
		s.undo = append(s.undo, undoRec{kind: undoDelete, handle: h, table: t.Table, oldRow: old})
	}
	return t.Table, old, nil
}

// Update assigns new values to selected columns of the tuple with the given
// handle and returns the pre-update row. Assignments are coerced against
// the schema.
func (s *Store) Update(h Handle, assign map[int]value.Value) (table string, old Row, err error) {
	t, ok := s.find(h)
	if !ok {
		return "", nil, fmt.Errorf("storage: update of unknown handle %d", h)
	}
	td := s.tables[t.Table]
	old = t.Values
	next := old.Clone()
	for idx, v := range assign {
		if idx < 0 || idx >= len(next) {
			return "", nil, fmt.Errorf("storage: column index %d out of range for table %q", idx, t.Table)
		}
		col := td.schema.Columns[idx]
		if v.IsNull() {
			if col.NotNull {
				return "", nil, fmt.Errorf("storage: NULL in NOT NULL column %s.%s", t.Table, col.Name)
			}
			next[idx] = v
			continue
		}
		cv, cerr := value.Coerce(v, col.Type)
		if cerr != nil {
			return "", nil, fmt.Errorf("storage: column %s.%s: %v", t.Table, col.Name, cerr)
		}
		next[idx] = cv
	}
	td.setValues(h, next)
	if s.inTxn {
		s.undo = append(s.undo, undoRec{kind: undoUpdate, handle: h, table: t.Table, oldRow: old})
	}
	return t.Table, old, nil
}

// find locates a live tuple by handle across all tables.
func (s *Store) find(h Handle) (*Tuple, bool) {
	for _, td := range s.tables {
		if pos, ok := td.index[h]; ok {
			return td.rows[pos], true
		}
	}
	return nil, false
}

// Get returns the live tuple with the given handle.
func (s *Store) Get(h Handle) (*Tuple, bool) { return s.find(h) }

// Scan calls fn for every tuple of the named table, in the store's current
// physical order. fn must not modify the table. A false return stops the
// scan.
func (s *Store) Scan(table string, fn func(*Tuple) bool) error {
	td, err := s.table(table)
	if err != nil {
		return err
	}
	s.heapScans.Add(1)
	for _, t := range td.rows {
		if !fn(t) {
			return nil
		}
	}
	return nil
}

// Count returns the number of tuples in the named table.
func (s *Store) Count(table string) (int, error) {
	td, err := s.table(table)
	if err != nil {
		return 0, err
	}
	return len(td.rows), nil
}

// Tuples returns the tuples of the named table sorted by handle — a
// deterministic order used by tests and result printers.
func (s *Store) Tuples(table string) ([]*Tuple, error) {
	td, err := s.table(table)
	if err != nil {
		return nil, err
	}
	out := make([]*Tuple, len(td.rows))
	copy(out, td.rows)
	sort.Slice(out, func(i, j int) bool { return out[i].Handle < out[j].Handle })
	return out, nil
}

// NextHandle reports the next handle that would be allocated. Used by
// tests asserting non-reuse.
func (s *Store) NextHandle() Handle { return s.next + 1 }

// ---------------------------------------------------------------------------
// Recovery primitives
//
// Crash recovery replays composed net transition effects from the
// write-ahead log; the effects address tuples by their system handles, so
// replay must reproduce handles exactly rather than allocate fresh ones.
// These primitives are only legal outside transactions (recovery happens
// before the engine serves anything) and go through the same insertTuple /
// removeHandle / setValues mutation paths as normal operation, so
// secondary indexes stay consistent.
// ---------------------------------------------------------------------------

// ReplayInsert inserts a tuple with an explicit, pre-assigned handle and
// advances the handle counter past it.
func (s *Store) ReplayInsert(table string, h Handle, row Row) error {
	if s.inTxn {
		return fmt.Errorf("storage: replay inside a transaction")
	}
	if h == 0 {
		return fmt.Errorf("storage: replay insert with zero handle")
	}
	td, err := s.table(table)
	if err != nil {
		return err
	}
	vals, err := coerceRow(td.schema, row)
	if err != nil {
		return err
	}
	if _, live := s.find(h); live {
		return fmt.Errorf("storage: replay insert of live handle %d", h)
	}
	td.insertTuple(&Tuple{Handle: h, Table: td.schema.Name, Values: vals})
	if h > s.next {
		s.next = h
	}
	return nil
}

// ReplayDelete removes the tuple with the given handle.
func (s *Store) ReplayDelete(h Handle) error {
	if s.inTxn {
		return fmt.Errorf("storage: replay inside a transaction")
	}
	t, ok := s.find(h)
	if !ok {
		return fmt.Errorf("storage: replay delete of unknown handle %d", h)
	}
	s.tables[t.Table].removeHandle(h)
	return nil
}

// ReplaySet overwrites the full row of a live tuple (update replay: the
// log records final values, not deltas).
func (s *Store) ReplaySet(h Handle, row Row) error {
	if s.inTxn {
		return fmt.Errorf("storage: replay inside a transaction")
	}
	t, ok := s.find(h)
	if !ok {
		return fmt.Errorf("storage: replay set of unknown handle %d", h)
	}
	td := s.tables[t.Table]
	vals, err := coerceRow(td.schema, row)
	if err != nil {
		return err
	}
	td.setValues(h, vals)
	return nil
}

// RestoreNextHandle advances the handle counter so that the next
// allocation follows last, exactly as it would have pre-crash. Handles
// consumed by transactions that rolled back after the last logged commit
// are deliberately not reproduced; handles only ever need to be unique and
// monotone, never dense.
func (s *Store) RestoreNextHandle(last Handle) {
	if last > s.next {
		s.next = last
	}
}

// Clone deep-copies the store: catalog, data, and handle counter. The clone
// has no open transaction. Clone exists for reference implementations and
// benchmarks that need to recompute effects from a previous state.
func (s *Store) Clone() *Store {
	if s.inTxn {
		panic("storage: Clone during open transaction")
	}
	c := New()
	c.next = s.next
	for _, name := range s.cat.Names() {
		t, _ := s.cat.Lookup(name)
		// Schemas are immutable; share them.
		if err := c.cat.Create(t); err != nil {
			panic(err)
		}
		src := s.tables[name]
		dst := &tableData{schema: t, index: make(map[Handle]int, len(src.rows))}
		for _, tup := range src.rows {
			dst.insertTuple(&Tuple{Handle: tup.Handle, Table: tup.Table, Values: tup.Values.Clone()})
		}
		c.tables[name] = dst
	}
	for _, name := range s.cat.IndexNames() {
		def, _ := s.cat.Index(name)
		ndef, err := c.cat.CreateIndex(def.Name, def.Table, def.Column)
		if err != nil {
			panic(err)
		}
		dst := c.tables[ndef.Table]
		dst.indexes = append(dst.indexes, newSecondaryIndex(ndef, dst))
	}
	return c
}
