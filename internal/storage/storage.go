// Package storage implements the in-memory relational storage engine
// underneath the rule system: heap tables holding multisets of tuples,
// system tuple handles, and an undo log providing transaction rollback.
//
// Following the paper (Section 2), every tuple carries a "system tuple
// handle — a distinct, non-reusable value identifying the tuple and its
// containing table". Handles are allocated from a monotonically increasing
// counter and are never reused, even across rolled-back transactions.
// Duplicate tuples may appear in a table; each occupies its own handle.
//
// Concurrency model (see also snapshot.go). The store itself follows the
// paper's single-stream model — one writer, no locking — but every commit
// (and every DDL statement) publishes an immutable point-in-time Snapshot
// behind an atomic pointer. Tables are copy-on-write at table granularity:
// the first mutation of a table after a publish clones its physical
// representation, so the published version is frozen forever and readers
// traverse it with zero locking while the writer keeps mutating its
// private copy in place.
package storage

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sopr/internal/catalog"
	"sopr/internal/value"
)

// Handle is a system tuple handle (Section 2 of the paper): a distinct,
// non-reusable identifier for a tuple and its containing table. Handle 0 is
// never allocated and means "no tuple".
type Handle uint64

// Row is a tuple's column values, in schema order. Rows handed out by the
// store are snapshots; callers must not mutate them.
type Row []value.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Equal reports value-wise equality (NULL equal to NULL).
func (r Row) Equal(s Row) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if !r[i].Equal(s[i]) {
			return false
		}
	}
	return true
}

// String renders the row as (v1, v2, ...).
func (r Row) String() string {
	out := "("
	for i, v := range r {
		if i > 0 {
			out += ", "
		}
		out += v.String()
	}
	return out + ")"
}

// Tuple is a stored tuple: its handle, containing table, and current values.
// Once a tuple has been published in a snapshot it is immutable: updates
// replace the *Tuple rather than assigning Values in place.
type Tuple struct {
	Handle Handle
	Table  string
	Values Row
}

// tableData is the physical representation of one table: a slice of tuples
// (duplicates allowed) plus a handle index. Deletion swaps with the last
// element, so scan order is deterministic for a given operation history but
// not insertion-ordered.
//
// frozen marks a tableData that has been captured by a published Snapshot.
// A frozen tableData is immutable; the writer clones it (copy-on-write) on
// the first mutation after the publish.
type tableData struct {
	schema  *catalog.Table
	rows    []*Tuple
	index   map[Handle]int
	indexes []*secondaryIndex
	stats   []*colStats // per-column cardinality stats (see stats.go)
	frozen  bool
}

// clone deep-copies the physical structures (row slice, handle index,
// secondary-index buckets) into a fresh unfrozen tableData. Tuples and
// their Rows are shared: they are immutable once stored.
func (td *tableData) clone() *tableData {
	rows := make([]*Tuple, len(td.rows))
	copy(rows, td.rows)
	index := make(map[Handle]int, len(td.index))
	for h, p := range td.index {
		index[h] = p
	}
	var indexes []*secondaryIndex
	if len(td.indexes) > 0 {
		indexes = make([]*secondaryIndex, len(td.indexes))
		for i, ix := range td.indexes {
			indexes[i] = ix.clone()
		}
	}
	stats := make([]*colStats, len(td.stats))
	for i, cs := range td.stats {
		stats[i] = cs.clone()
	}
	return &tableData{schema: td.schema, rows: rows, index: index, indexes: indexes, stats: stats}
}

// undoKind discriminates undo-log records.
type undoKind int

const (
	undoInsert undoKind = iota // compensate by deleting the handle
	undoDelete                 // compensate by re-inserting the tuple
	undoUpdate                 // compensate by restoring old values
)

type undoRec struct {
	kind   undoKind
	handle Handle
	table  string
	oldRow Row // for undoDelete (full tuple) and undoUpdate (pre-image)
}

// accessCounters is the atomic access-path counter pair. It is shared by
// pointer between the Store and every Snapshot it publishes, so indexed
// and scanned reads count identically no matter which side served them.
type accessCounters struct {
	heapScans    atomic.Int64
	indexLookups atomic.Int64
}

// Store is the storage engine. It is not safe for concurrent mutation; the
// paper's model of system execution is a single stream of operation blocks
// with concurrency "transparent" below the abstraction (Section 2.1).
// Concurrent readers never touch the Store directly: they load the current
// Snapshot (an atomic pointer read) and traverse its frozen structures with
// no locking at all. The only words the two sides share are the atomic
// access-path counters.
type Store struct {
	cat    *catalog.Catalog
	next   Handle
	tables map[string]*tableData
	// owner maps every live handle to the (normalized) name of its
	// containing table, so handle lookups are O(1) instead of a scan over
	// all tables in nondeterministic map order. The three mutation
	// primitives (applyInsert, applyRemove, applySet) keep it in sync;
	// CheckHandleIndex verifies it against a full scan.
	owner map[Handle]string
	undo  []undoRec
	inTxn bool

	counters *accessCounters
	snap     atomic.Pointer[Snapshot]
}

// New returns an empty store with its own catalog and an (empty) published
// snapshot.
func New() *Store {
	s := &Store{
		cat:      catalog.New(),
		tables:   make(map[string]*tableData),
		owner:    make(map[Handle]string),
		counters: &accessCounters{},
	}
	s.publish()
	return s
}

// Catalog returns the store's schema catalog.
func (s *Store) Catalog() *catalog.Catalog { return s.cat }

// CreateTable registers a new table. DDL is not undoable and is rejected
// inside a transaction.
func (s *Store) CreateTable(t *catalog.Table) error {
	if s.inTxn {
		return fmt.Errorf("storage: CREATE TABLE inside a transaction is not supported")
	}
	cat := s.cat.Clone()
	if err := cat.Create(t); err != nil {
		return err
	}
	s.cat = cat
	s.tables[t.Name] = &tableData{schema: t, index: make(map[Handle]int), stats: newTableStats(len(t.Columns))}
	s.publish()
	return nil
}

// DropTable removes a table and all its tuples. Not undoable.
func (s *Store) DropTable(name string) error {
	if s.inTxn {
		return fmt.Errorf("storage: DROP TABLE inside a transaction is not supported")
	}
	t, err := s.cat.Lookup(name)
	if err != nil {
		return err
	}
	cat := s.cat.Clone()
	if err := cat.Drop(t.Name); err != nil {
		return err
	}
	s.cat = cat
	if td, ok := s.tables[t.Name]; ok {
		for _, tup := range td.rows {
			delete(s.owner, tup.Handle)
		}
	}
	delete(s.tables, t.Name)
	s.publish()
	return nil
}

func (s *Store) table(name string) (*tableData, error) {
	return lookupTable(s.cat, s.tables, name)
}

// Begin starts a transaction. Nested transactions are not supported: the
// paper's transaction is one external operation block plus its
// rule-generated blocks, all undone together on rollback.
func (s *Store) Begin() error {
	if s.inTxn {
		return fmt.Errorf("storage: transaction already in progress")
	}
	s.inTxn = true
	s.undo = s.undo[:0]
	return nil
}

// InTxn reports whether a transaction is open.
func (s *Store) InTxn() bool { return s.inTxn }

// Commit ends the transaction, discarding the undo log and publishing the
// new committed state as the current snapshot.
func (s *Store) Commit() error {
	if !s.inTxn {
		return fmt.Errorf("storage: no transaction in progress")
	}
	s.inTxn = false
	s.undo = s.undo[:0]
	s.publish()
	return nil
}

// Rollback undoes every change of the current transaction, in reverse
// order, restoring the pre-transaction state. Handles allocated during the
// transaction are not reused afterwards. The published snapshot is left as
// it was: the restored state is value-identical to it.
func (s *Store) Rollback() error {
	if !s.inTxn {
		return fmt.Errorf("storage: no transaction in progress")
	}
	for i := len(s.undo) - 1; i >= 0; i-- {
		rec := s.undo[i]
		td, ok := s.tables[rec.table]
		if !ok {
			return fmt.Errorf("storage: rollback: table %q vanished (internal error)", rec.table)
		}
		switch rec.kind {
		case undoInsert:
			if _, err := s.applyRemove(td, rec.handle); err != nil {
				return fmt.Errorf("storage: rollback: %w", err)
			}
		case undoDelete:
			s.applyInsert(td, &Tuple{Handle: rec.handle, Table: rec.table, Values: rec.oldRow})
		case undoUpdate:
			if err := s.applySet(td, rec.handle, rec.oldRow); err != nil {
				return fmt.Errorf("storage: rollback: %w", err)
			}
		}
	}
	s.inTxn = false
	s.undo = s.undo[:0]
	return nil
}

// writable returns a tableData the writer may mutate: td itself when it is
// private to the writer, or a fresh copy-on-write clone (installed in
// s.tables) when td is frozen in a published snapshot.
func (s *Store) writable(td *tableData) *tableData {
	if !td.frozen {
		return td
	}
	c := td.clone()
	s.tables[td.schema.Name] = c
	return c
}

// applyInsert, applyRemove and applySet are the only primitives that mutate
// a table's tuples. Both forward operations and the undo log's
// compensations go through them, so secondary indexes and the store-level
// handle directory stay in sync on commit and rollback alike. Each takes
// the copy-on-write step first, so published snapshots are never touched.

func (s *Store) applyInsert(td *tableData, t *Tuple) {
	td = s.writable(td)
	td.index[t.Handle] = len(td.rows)
	td.rows = append(td.rows, t)
	for _, ix := range td.indexes {
		ix.add(t.Values, t.Handle)
	}
	td.statsAdd(t.Values)
	s.owner[t.Handle] = td.schema.Name
}

// applyRemove deletes the tuple with handle h, returning its final values.
// A handle absent from the table is an explicit error: the position lookup
// must not fall through to map-zero-value position 0, which would silently
// remove an unrelated tuple.
func (s *Store) applyRemove(td *tableData, h Handle) (Row, error) {
	td = s.writable(td)
	pos, ok := td.index[h]
	if !ok {
		return nil, fmt.Errorf("storage: remove of handle %d absent from table %q", h, td.schema.Name)
	}
	t := td.rows[pos]
	last := len(td.rows) - 1
	if pos != last {
		td.rows[pos] = td.rows[last]
		td.index[td.rows[pos].Handle] = pos
	}
	td.rows = td.rows[:last]
	delete(td.index, h)
	for _, ix := range td.indexes {
		ix.remove(t.Values, h)
	}
	td.statsRemove(t.Values)
	delete(s.owner, h)
	return t.Values, nil
}

// applySet replaces the values of the tuple with handle h, re-keying
// secondary indexes for the changed row. The stored *Tuple is replaced, not
// mutated: the old one may be shared with a published snapshot. Like
// applyRemove, an absent handle is an explicit error rather than a silent
// overwrite of position 0.
func (s *Store) applySet(td *tableData, h Handle, next Row) error {
	td = s.writable(td)
	pos, ok := td.index[h]
	if !ok {
		return fmt.Errorf("storage: set of handle %d absent from table %q", h, td.schema.Name)
	}
	t := td.rows[pos]
	for _, ix := range td.indexes {
		ix.remove(t.Values, h)
		ix.add(next, h)
	}
	td.statsRemove(t.Values)
	td.statsAdd(next)
	td.rows[pos] = &Tuple{Handle: h, Table: t.Table, Values: next}
	return nil
}

// coerceRow validates and coerces a row against the table schema.
func coerceRow(schema *catalog.Table, row Row) (Row, error) {
	if len(row) != len(schema.Columns) {
		return nil, fmt.Errorf("storage: table %q expects %d values, got %d",
			schema.Name, len(schema.Columns), len(row))
	}
	out := make(Row, len(row))
	for i, v := range row {
		col := schema.Columns[i]
		if v.IsNull() {
			if col.NotNull {
				return nil, fmt.Errorf("storage: NULL in NOT NULL column %s.%s", schema.Name, col.Name)
			}
			out[i] = v
			continue
		}
		cv, err := value.Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("storage: column %s.%s: %v", schema.Name, col.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// Insert adds a tuple to the named table and returns its fresh handle.
func (s *Store) Insert(table string, row Row) (Handle, error) {
	td, err := s.table(table)
	if err != nil {
		return 0, err
	}
	vals, err := coerceRow(td.schema, row)
	if err != nil {
		return 0, err
	}
	s.next++
	h := s.next
	s.applyInsert(td, &Tuple{Handle: h, Table: td.schema.Name, Values: vals})
	if s.inTxn {
		s.undo = append(s.undo, undoRec{kind: undoInsert, handle: h, table: td.schema.Name})
	}
	return h, nil
}

// Delete removes the tuple with the given handle, returning its final
// values. It fails if the handle does not identify a live tuple.
func (s *Store) Delete(h Handle) (table string, old Row, err error) {
	t, ok := s.find(h)
	if !ok {
		return "", nil, fmt.Errorf("storage: delete of unknown handle %d", h)
	}
	old, err = s.applyRemove(s.tables[t.Table], h)
	if err != nil {
		return "", nil, err
	}
	if s.inTxn {
		s.undo = append(s.undo, undoRec{kind: undoDelete, handle: h, table: t.Table, oldRow: old})
	}
	return t.Table, old, nil
}

// Update assigns new values to selected columns of the tuple with the given
// handle and returns the pre-update row. Assignments are coerced against
// the schema.
func (s *Store) Update(h Handle, assign map[int]value.Value) (table string, old Row, err error) {
	t, ok := s.find(h)
	if !ok {
		return "", nil, fmt.Errorf("storage: update of unknown handle %d", h)
	}
	td := s.tables[t.Table]
	old = t.Values
	next := old.Clone()
	for idx, v := range assign {
		if idx < 0 || idx >= len(next) {
			return "", nil, fmt.Errorf("storage: column index %d out of range for table %q", idx, t.Table)
		}
		col := td.schema.Columns[idx]
		if v.IsNull() {
			if col.NotNull {
				return "", nil, fmt.Errorf("storage: NULL in NOT NULL column %s.%s", t.Table, col.Name)
			}
			next[idx] = v
			continue
		}
		cv, cerr := value.Coerce(v, col.Type)
		if cerr != nil {
			return "", nil, fmt.Errorf("storage: column %s.%s: %v", t.Table, col.Name, cerr)
		}
		next[idx] = cv
	}
	if err := s.applySet(td, h, next); err != nil {
		return "", nil, err
	}
	if s.inTxn {
		s.undo = append(s.undo, undoRec{kind: undoUpdate, handle: h, table: t.Table, oldRow: old})
	}
	return t.Table, old, nil
}

// find locates a live tuple by handle through the store-level handle
// directory: one map lookup instead of a scan over every table.
func (s *Store) find(h Handle) (*Tuple, bool) {
	name, ok := s.owner[h]
	if !ok {
		return nil, false
	}
	td, ok := s.tables[name]
	if !ok {
		return nil, false
	}
	pos, ok := td.index[h]
	if !ok {
		return nil, false
	}
	return td.rows[pos], true
}

// Get returns the live tuple with the given handle.
func (s *Store) Get(h Handle) (*Tuple, bool) { return s.find(h) }

// CheckHandleIndex verifies the store-level handle directory against a full
// scan of every table, returning the first discrepancy. Tests run it after
// randomized operation histories (including rollbacks and replays) to prove
// the directory can never disagree with the heap.
func (s *Store) CheckHandleIndex() error {
	live := 0
	for name, td := range s.tables {
		for _, t := range td.rows {
			got, ok := s.owner[t.Handle]
			if !ok {
				return fmt.Errorf("storage: handle %d live in table %q but absent from the handle directory", t.Handle, name)
			}
			if got != name {
				return fmt.Errorf("storage: handle %d live in table %q but directory says %q", t.Handle, name, got)
			}
			live++
		}
	}
	if live != len(s.owner) {
		return fmt.Errorf("storage: handle directory holds %d entries, tables hold %d live tuples", len(s.owner), live)
	}
	return nil
}

// Scan calls fn for every tuple of the named table, in the store's current
// physical order. fn must not modify the table. A false return stops the
// scan.
func (s *Store) Scan(table string, fn func(*Tuple) bool) error {
	td, err := s.table(table)
	if err != nil {
		return err
	}
	scanTable(td, s.counters, fn)
	return nil
}

// Count returns the number of tuples in the named table.
func (s *Store) Count(table string) (int, error) {
	td, err := s.table(table)
	if err != nil {
		return 0, err
	}
	return len(td.rows), nil
}

// Tuples returns the tuples of the named table sorted by handle — a
// deterministic order used by dumps, tests and result printers. The
// returned tuples are clones: callers may mutate them without aliasing
// committed state (the published snapshots share the live tuples).
func (s *Store) Tuples(table string) ([]*Tuple, error) {
	td, err := s.table(table)
	if err != nil {
		return nil, err
	}
	return sortedTupleClones(td), nil
}

// sortedTupleClones is the shared body of Store.Tuples and Snapshot.Tuples.
func sortedTupleClones(td *tableData) []*Tuple {
	out := make([]*Tuple, len(td.rows))
	for i, t := range td.rows {
		out[i] = &Tuple{Handle: t.Handle, Table: t.Table, Values: t.Values.Clone()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Handle < out[j].Handle })
	return out
}

// NextHandle reports the next handle that would be allocated. Used by
// tests asserting non-reuse.
func (s *Store) NextHandle() Handle { return s.next + 1 }

// ---------------------------------------------------------------------------
// Recovery primitives
//
// Crash recovery replays composed net transition effects from the
// write-ahead log; the effects address tuples by their system handles, so
// replay must reproduce handles exactly rather than allocate fresh ones.
// These primitives are only legal outside transactions (recovery happens
// before the engine serves anything) and go through the same applyInsert /
// applyRemove / applySet mutation paths as normal operation, so secondary
// indexes and the handle directory stay consistent. They deliberately do
// not publish: recovery replays many records and publishes once at the end
// (see engine.PublishSnapshot), while the replication follower publishes
// after every applied record for per-record read visibility.
// ---------------------------------------------------------------------------

// ReplayInsert inserts a tuple with an explicit, pre-assigned handle and
// advances the handle counter past it.
func (s *Store) ReplayInsert(table string, h Handle, row Row) error {
	if s.inTxn {
		return fmt.Errorf("storage: replay inside a transaction")
	}
	if h == 0 {
		return fmt.Errorf("storage: replay insert with zero handle")
	}
	td, err := s.table(table)
	if err != nil {
		return err
	}
	vals, err := coerceRow(td.schema, row)
	if err != nil {
		return err
	}
	if _, live := s.find(h); live {
		return fmt.Errorf("storage: replay insert of live handle %d", h)
	}
	s.applyInsert(td, &Tuple{Handle: h, Table: td.schema.Name, Values: vals})
	if h > s.next {
		s.next = h
	}
	return nil
}

// ReplayDelete removes the tuple with the given handle.
func (s *Store) ReplayDelete(h Handle) error {
	if s.inTxn {
		return fmt.Errorf("storage: replay inside a transaction")
	}
	t, ok := s.find(h)
	if !ok {
		return fmt.Errorf("storage: replay delete of unknown handle %d", h)
	}
	_, err := s.applyRemove(s.tables[t.Table], h)
	return err
}

// ReplaySet overwrites the full row of a live tuple (update replay: the
// log records final values, not deltas).
func (s *Store) ReplaySet(h Handle, row Row) error {
	if s.inTxn {
		return fmt.Errorf("storage: replay inside a transaction")
	}
	t, ok := s.find(h)
	if !ok {
		return fmt.Errorf("storage: replay set of unknown handle %d", h)
	}
	td := s.tables[t.Table]
	vals, err := coerceRow(td.schema, row)
	if err != nil {
		return err
	}
	return s.applySet(td, h, vals)
}

// RestoreNextHandle advances the handle counter so that the next
// allocation follows last, exactly as it would have pre-crash. Handles
// consumed by transactions that rolled back after the last logged commit
// are deliberately not reproduced; handles only ever need to be unique and
// monotone, never dense.
func (s *Store) RestoreNextHandle(last Handle) {
	if last > s.next {
		s.next = last
	}
}

// Clone deep-copies the store: catalog, data, and handle counter. The clone
// has no open transaction. Clone exists for reference implementations and
// benchmarks that need to recompute effects from a previous state.
func (s *Store) Clone() *Store {
	if s.inTxn {
		panic("storage: Clone during open transaction")
	}
	c := New()
	c.next = s.next
	for _, name := range s.cat.Names() {
		t, _ := s.cat.Lookup(name)
		// Schemas are immutable; share them.
		if err := c.CreateTable(t); err != nil {
			panic(err)
		}
		src := s.tables[name]
		dst := c.tables[name]
		for _, tup := range src.rows {
			c.applyInsert(dst, &Tuple{Handle: tup.Handle, Table: tup.Table, Values: tup.Values.Clone()})
		}
	}
	for _, name := range s.cat.IndexNames() {
		def, _ := s.cat.Index(name)
		if err := c.CreateIndex(def.Name, def.Table, def.Column); err != nil {
			panic(err)
		}
	}
	c.publish()
	return c
}
