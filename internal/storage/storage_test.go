package storage

import (
	"testing"
	"testing/quick"

	"sopr/internal/catalog"
	"sopr/internal/value"
)

func newEmpStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	tab, err := catalog.NewTable("emp", []catalog.Column{
		{Name: "name", Type: value.KindString},
		{Name: "emp_no", Type: value.KindInt, NotNull: true},
		{Name: "salary", Type: value.KindFloat},
		{Name: "dept_no", Type: value.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(tab); err != nil {
		t.Fatal(err)
	}
	return s
}

func emp(name string, no int64, sal float64, dept int64) Row {
	return Row{value.NewString(name), value.NewInt(no), value.NewFloat(sal), value.NewInt(dept)}
}

func TestInsertGetScan(t *testing.T) {
	s := newEmpStore(t)
	h1, err := s.Insert("emp", emp("jane", 1, 100, 1))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.Insert("emp", emp("mary", 2, 90, 1))
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 || h1 == 0 {
		t.Fatalf("handles not distinct/nonzero: %d %d", h1, h2)
	}
	tup, ok := s.Get(h1)
	if !ok || tup.Table != "emp" || tup.Values[0].Str() != "jane" {
		t.Fatalf("Get(%d) = %v, %v", h1, tup, ok)
	}
	n := 0
	if err := s.Scan("emp", func(*Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("scan saw %d tuples, want 2", n)
	}
	if c, _ := s.Count("emp"); c != 2 {
		t.Errorf("Count = %d", c)
	}
	// Early-stop scan.
	n = 0
	s.Scan("emp", func(*Tuple) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop scan saw %d", n)
	}
}

func TestDuplicateTuplesAllowed(t *testing.T) {
	s := newEmpStore(t)
	r := emp("dup", 1, 50, 2)
	h1, _ := s.Insert("emp", r)
	h2, _ := s.Insert("emp", r)
	if h1 == h2 {
		t.Fatal("duplicate tuples must get distinct handles")
	}
	if c, _ := s.Count("emp"); c != 2 {
		t.Errorf("Count = %d, want 2 (duplicates preserved)", c)
	}
}

func TestDeleteAndHandleNonReuse(t *testing.T) {
	s := newEmpStore(t)
	h1, _ := s.Insert("emp", emp("a", 1, 1, 1))
	table, old, err := s.Delete(h1)
	if err != nil || table != "emp" || old[0].Str() != "a" {
		t.Fatalf("Delete: %v %v %v", table, old, err)
	}
	if _, ok := s.Get(h1); ok {
		t.Error("deleted tuple still visible")
	}
	if _, _, err := s.Delete(h1); err == nil {
		t.Error("double delete accepted")
	}
	h2, _ := s.Insert("emp", emp("b", 2, 2, 2))
	if h2 <= h1 {
		t.Errorf("handle reused or non-monotonic: %d after %d", h2, h1)
	}
}

func TestUpdate(t *testing.T) {
	s := newEmpStore(t)
	h, _ := s.Insert("emp", emp("a", 1, 100, 1))
	table, old, err := s.Update(h, map[int]value.Value{2: value.NewFloat(120)})
	if err != nil || table != "emp" {
		t.Fatalf("Update: %v", err)
	}
	if old[2].Float() != 100 {
		t.Errorf("old salary = %v, want 100", old[2])
	}
	tup, _ := s.Get(h)
	if tup.Values[2].Float() != 120 {
		t.Errorf("new salary = %v, want 120", tup.Values[2])
	}
	// Old row must be an independent snapshot.
	if &old[0] == &tup.Values[0] {
		t.Error("old row aliases live row")
	}
	// Int column accepts integral float via coercion.
	if _, _, err := s.Update(h, map[int]value.Value{3: value.NewFloat(2.0)}); err != nil {
		t.Errorf("integral float into int column: %v", err)
	}
	if _, _, err := s.Update(h, map[int]value.Value{3: value.NewFloat(2.5)}); err == nil {
		t.Error("non-integral float into int column accepted")
	}
	if _, _, err := s.Update(h, map[int]value.Value{1: value.Null}); err == nil {
		t.Error("NULL into NOT NULL column accepted")
	}
	if _, _, err := s.Update(h, map[int]value.Value{99: value.NewInt(1)}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, _, err := s.Update(999, nil); err == nil {
		t.Error("update of unknown handle accepted")
	}
}

func TestSchemaValidationOnInsert(t *testing.T) {
	s := newEmpStore(t)
	if _, err := s.Insert("emp", Row{value.NewString("x")}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := s.Insert("emp", emp("x", 1, 1, 1)[:3]); err == nil {
		t.Error("short row accepted")
	}
	bad := emp("x", 1, 1, 1)
	bad[1] = value.Null
	if _, err := s.Insert("emp", bad); err == nil {
		t.Error("NULL in NOT NULL column accepted")
	}
	bad2 := emp("x", 1, 1, 1)
	bad2[2] = value.NewString("lots")
	if _, err := s.Insert("emp", bad2); err == nil {
		t.Error("string into float column accepted")
	}
	// int → float coercion on insert
	r := emp("x", 1, 1, 1)
	r[2] = value.NewInt(7)
	h, err := s.Insert("emp", r)
	if err != nil {
		t.Fatalf("int into float column: %v", err)
	}
	tup, _ := s.Get(h)
	if tup.Values[2].Kind() != value.KindFloat || tup.Values[2].Float() != 7 {
		t.Errorf("coerced value = %v", tup.Values[2])
	}
	if _, err := s.Insert("nosuch", emp("x", 1, 1, 1)); err == nil {
		t.Error("insert into missing table accepted")
	}
}

func TestTransactionCommit(t *testing.T) {
	s := newEmpStore(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err == nil {
		t.Error("nested Begin accepted")
	}
	s.Insert("emp", emp("a", 1, 1, 1))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err == nil {
		t.Error("Commit without txn accepted")
	}
	if c, _ := s.Count("emp"); c != 1 {
		t.Errorf("after commit Count = %d", c)
	}
}

func TestRollbackRestoresState(t *testing.T) {
	s := newEmpStore(t)
	h0, _ := s.Insert("emp", emp("keep", 1, 100, 1))
	hDel, _ := s.Insert("emp", emp("victim", 2, 50, 1))

	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	// Mixed workload: insert, update existing twice, delete pre-existing,
	// insert-then-delete, insert-then-update.
	s.Insert("emp", emp("new1", 3, 10, 2))
	s.Update(h0, map[int]value.Value{2: value.NewFloat(111)})
	s.Update(h0, map[int]value.Value{2: value.NewFloat(222)})
	s.Delete(hDel)
	hTmp, _ := s.Insert("emp", emp("tmp", 4, 1, 3))
	s.Delete(hTmp)
	hNew, _ := s.Insert("emp", emp("new2", 5, 20, 3))
	s.Update(hNew, map[int]value.Value{0: value.NewString("renamed")})
	nextBefore := s.NextHandle()

	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if s.InTxn() {
		t.Error("still in txn after rollback")
	}
	if c, _ := s.Count("emp"); c != 2 {
		t.Fatalf("after rollback Count = %d, want 2", c)
	}
	tup, ok := s.Get(h0)
	if !ok || tup.Values[2].Float() != 100 {
		t.Errorf("h0 not restored: %v", tup)
	}
	v, ok := s.Get(hDel)
	if !ok || v.Values[0].Str() != "victim" {
		t.Errorf("deleted tuple not restored: %v", v)
	}
	if _, ok := s.Get(hNew); ok {
		t.Error("rolled-back insert still visible")
	}
	// Handles burned inside the rolled-back txn are not reused.
	if s.NextHandle() != nextBefore {
		t.Errorf("handle counter moved on rollback: %d vs %d", s.NextHandle(), nextBefore)
	}
	h, _ := s.Insert("emp", emp("post", 6, 1, 1))
	if h < nextBefore {
		t.Errorf("handle %d reused after rollback (burned up to %d)", h, nextBefore)
	}
	if err := s.Rollback(); err == nil {
		t.Error("Rollback without txn accepted")
	}
}

func TestDDLInsideTxnRejected(t *testing.T) {
	s := newEmpStore(t)
	s.Begin()
	tab, _ := catalog.NewTable("t2", []catalog.Column{{Name: "a", Type: value.KindInt}})
	if err := s.CreateTable(tab); err == nil {
		t.Error("CREATE TABLE inside txn accepted")
	}
	if err := s.DropTable("emp"); err == nil {
		t.Error("DROP TABLE inside txn accepted")
	}
	s.Rollback()
	if err := s.CreateTable(tab); err != nil {
		t.Errorf("CREATE TABLE after txn: %v", err)
	}
	if err := s.DropTable("t2"); err != nil {
		t.Errorf("DropTable: %v", err)
	}
	if err := s.DropTable("t2"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestTuplesSortedByHandle(t *testing.T) {
	s := newEmpStore(t)
	var hs []Handle
	for i := 0; i < 10; i++ {
		h, _ := s.Insert("emp", emp("x", int64(i), 1, 1))
		hs = append(hs, h)
	}
	// Delete a middle tuple to force swap-compaction, then check ordering.
	s.Delete(hs[4])
	tups, err := s.Tuples("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(tups) != 9 {
		t.Fatalf("len = %d", len(tups))
	}
	for i := 1; i < len(tups); i++ {
		if tups[i-1].Handle >= tups[i].Handle {
			t.Fatalf("Tuples not sorted: %d then %d", tups[i-1].Handle, tups[i].Handle)
		}
	}
}

func TestClone(t *testing.T) {
	s := newEmpStore(t)
	h, _ := s.Insert("emp", emp("a", 1, 100, 1))
	c := s.Clone()
	// Mutating the clone must not affect the original and vice versa.
	c.Update(h, map[int]value.Value{2: value.NewFloat(999)})
	orig, _ := s.Get(h)
	if orig.Values[2].Float() != 100 {
		t.Error("clone mutation leaked into original")
	}
	s.Delete(h)
	if _, ok := c.Get(h); !ok {
		t.Error("original deletion leaked into clone")
	}
	// Handle counters advance independently but start equal.
	h2, _ := c.Insert("emp", emp("b", 2, 1, 1))
	if h2 <= h {
		t.Errorf("clone handle %d not beyond %d", h2, h)
	}
}

func TestCloneDuringTxnPanics(t *testing.T) {
	s := newEmpStore(t)
	s.Begin()
	defer func() {
		if recover() == nil {
			t.Error("Clone during txn should panic")
		}
	}()
	s.Clone()
}

// Property: a random batch of inserts inside a transaction followed by
// rollback always restores the exact prior table contents.
func TestRollbackProperty(t *testing.T) {
	f := func(salaries []float64, deleteMask []bool) bool {
		s := newEmpStore(t)
		var base []Handle
		for i := 0; i < 5; i++ {
			h, _ := s.Insert("emp", emp("base", int64(i), float64(i)*10, 1))
			base = append(base, h)
		}
		before := snapshot(s)
		s.Begin()
		for i, sal := range salaries {
			s.Insert("emp", emp("tmp", int64(100+i), sal, 2))
		}
		for i, del := range deleteMask {
			if del && i < len(base) {
				s.Delete(base[i])
			} else if i < len(base) {
				s.Update(base[i], map[int]value.Value{2: value.NewFloat(-1)})
			}
		}
		s.Rollback()
		return snapshotEqual(before, snapshot(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func snapshot(s *Store) map[Handle]Row {
	m := make(map[Handle]Row)
	s.Scan("emp", func(t *Tuple) bool {
		m[t.Handle] = t.Values.Clone()
		return true
	})
	return m
}

func snapshotEqual(a, b map[Handle]Row) bool {
	if len(a) != len(b) {
		return false
	}
	for h, r := range a {
		if !r.Equal(b[h]) {
			return false
		}
	}
	return true
}

func TestCatalogAccessorAndCaseLookups(t *testing.T) {
	s := newEmpStore(t)
	if !s.Catalog().Has("emp") {
		t.Error("Catalog accessor")
	}
	// Case-variant table names route through the catalog fallback.
	if _, err := s.Insert("EMP", emp("a", 1, 1, 1)); err != nil {
		t.Errorf("case-variant insert: %v", err)
	}
	if n, err := s.Count("Emp"); err != nil || n != 1 {
		t.Errorf("case-variant count: %d, %v", n, err)
	}
	if err := s.Scan("eMp", func(*Tuple) bool { return true }); err != nil {
		t.Errorf("case-variant scan: %v", err)
	}
	if _, err := s.Count("nosuch"); err == nil {
		t.Error("count of missing table accepted")
	}
	if _, err := s.Tuples("nosuch"); err == nil {
		t.Error("tuples of missing table accepted")
	}
	// Duplicate CreateTable rejected.
	tab, _ := catalog.NewTable("emp", []catalog.Column{{Name: "a", Type: value.KindInt}})
	if err := s.CreateTable(tab); err == nil {
		t.Error("duplicate CreateTable accepted")
	}
}

func TestRowHelpers(t *testing.T) {
	r := emp("a", 1, 2, 3)
	c := r.Clone()
	if !r.Equal(c) {
		t.Error("clone not equal")
	}
	c[0] = value.NewString("b")
	if r.Equal(c) {
		t.Error("Equal ignored difference")
	}
	if r.Equal(c[:2]) {
		t.Error("Equal ignored length")
	}
	if got := (Row{value.NewInt(1), value.Null}).String(); got != "(1, NULL)" {
		t.Errorf("Row.String = %q", got)
	}
}
