package value

import (
	"math"
	"math/rand"
	"testing"
)

// randValue draws from a distribution heavy in adversarial cases: extreme
// integers, negative zero, NaN, infinities, numbers astride the 2^53
// float-precision cliff, empty and quote-bearing strings.
func randValue(rng *rand.Rand) Value {
	switch rng.Intn(10) {
	case 0:
		return Null
	case 1, 2:
		ints := []int64{0, 1, -1, 5, -5, 1 << 40, math.MaxInt64, math.MinInt64,
			1 << 53, 1<<53 + 1, 1<<53 + 2, -(1 << 53), -(1<<53 + 1)}
		return NewInt(ints[rng.Intn(len(ints))])
	case 3, 4:
		floats := []float64{0, math.Copysign(0, -1), 1, -1, 0.25, -0.25, 2.5,
			math.NaN(), math.Inf(1), math.Inf(-1), 1 << 53, 1<<53 + 2, math.MaxFloat64, math.SmallestNonzeroFloat64}
		return NewFloat(floats[rng.Intn(len(floats))])
	case 5, 6:
		strs := []string{"", "a", "b", "ab", "x'y", "aa", "A", " ", "\x00"}
		return NewString(strs[rng.Intn(len(strs))])
	case 7:
		return NewBool(rng.Intn(2) == 0)
	default:
		return NewInt(int64(rng.Intn(41) - 20))
	}
}

// TestCompareTotalOrderProperty checks that Compare is a total order on
// every comparable subset: antisymmetric, transitive, reflexive, and
// defined exactly on non-NULL same-kind or numeric-numeric pairs.
func TestCompareTotalOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a, b, c := randValue(rng), randValue(rng), randValue(rng)

		cab, okAB := Compare(a, b)
		comparable := !a.IsNull() && !b.IsNull() &&
			(a.Kind() == b.Kind() || (a.IsNumeric() && b.IsNumeric()))
		if okAB != comparable {
			t.Fatalf("Compare(%s,%s) ok=%v, want %v", a, b, okAB, comparable)
		}
		if !okAB {
			continue
		}
		// Reflexivity.
		if cr, ok := Compare(a, a); !ok || cr != 0 {
			t.Fatalf("Compare(%s,%s) = %d,%v; want 0,true", a, a, cr, ok)
		}
		// Antisymmetry.
		cba, ok := Compare(b, a)
		if !ok || sign(cba) != -sign(cab) {
			t.Fatalf("Compare(%s,%s)=%d but Compare(%s,%s)=%d", a, b, cab, b, a, cba)
		}
		// Transitivity over comparable triples.
		cbc, okBC := Compare(b, c)
		cac, okAC := Compare(a, c)
		if okBC && okAC && cab <= 0 && cbc <= 0 && cac > 0 {
			t.Fatalf("order not transitive: %s <= %s <= %s but Compare(%s,%s)=%d",
				a, b, c, a, c, cac)
		}
	}
}

// TestCompareEqualAgreementProperty: for same-kind pairs, Compare==0 and
// Equal must agree (the evaluator uses Compare, the effect machinery uses
// Equal; disagreement would make "did this update change the row" and
// "does this row match" drift apart). Mixed int/float pairs agree on the
// float image by design.
func TestCompareEqualAgreementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		a, b := randValue(rng), randValue(rng)
		cmp, ok := Compare(a, b)
		if !ok {
			continue
		}
		if a.Kind() == b.Kind() && a.Kind() == KindFloat &&
			(math.IsNaN(a.Float()) || math.IsNaN(b.Float())) {
			// Compare gives NaN a total-order position; Equal follows
			// IEEE (NaN != NaN). Documented divergence, skip.
			continue
		}
		if (cmp == 0) != a.Equal(b) {
			t.Fatalf("Compare(%s,%s)=%d but Equal=%v", a, b, cmp, a.Equal(b))
		}
	}
}

// TestKeyExactInjectivityProperty: for same-kind pairs, exact keys are
// equal iff Compare reports the values equal — the contract that lets a
// hash index stand in for a scan-and-compare.
func TestKeyExactInjectivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		a, b := randValue(rng), randValue(rng)
		ka, okA := KeyExact(a)
		kb, okB := KeyExact(b)
		if okA != !a.IsNull() || okB != !b.IsNull() {
			t.Fatalf("KeyExact ok mismatch: %s→%v, %s→%v", a, okA, b, okB)
		}
		if !okA || !okB || a.Kind() != b.Kind() {
			continue
		}
		cmp, ok := Compare(a, b)
		if !ok {
			continue
		}
		if (ka == kb) != (cmp == 0) {
			t.Fatalf("KeyExact(%s)==KeyExact(%s) is %v but Compare=%d", a, b, ka == kb, cmp)
		}
	}
}

// TestKeyNumericCrossKindProperty: in the numeric keyspace an int and a
// float share a key exactly when Compare reports them equal, so an index
// keyed numerically answers cross-kind equality probes correctly (within
// float precision, which is why KeyNumeric documents the 2^53 caveat for
// int-int pairs and callers choose keyspaces per table).
func TestKeyNumericCrossKindProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20000; i++ {
		a, b := randValue(rng), randValue(rng)
		if !a.IsNumeric() || !b.IsNumeric() || a.Kind() == b.Kind() {
			continue
		}
		ka, _ := KeyNumeric(a)
		kb, _ := KeyNumeric(b)
		cmp, ok := Compare(a, b)
		if !ok {
			t.Fatalf("numeric pair %s,%s not comparable", a, b)
		}
		if (ka == kb) != (cmp == 0) {
			t.Fatalf("KeyNumeric(%s)==KeyNumeric(%s) is %v but Compare=%d", a, b, ka == kb, cmp)
		}
	}
}

// TestKeyFloatNormalization pins the two float keyspace foldings: -0.0
// keys with +0.0 and every NaN payload keys with the canonical NaN, in
// both keyspaces, matching Compare's treatment.
func TestKeyFloatNormalization(t *testing.T) {
	negZero, posZero := NewFloat(math.Copysign(0, -1)), NewFloat(0)
	k1, _ := KeyExact(negZero)
	k2, _ := KeyExact(posZero)
	if k1 != k2 {
		t.Error("-0.0 and 0.0 have different exact keys")
	}
	payloadNaN := NewFloat(math.Float64frombits(0x7ff8000000000001))
	k3, _ := KeyExact(payloadNaN)
	k4, _ := KeyExact(NewFloat(math.NaN()))
	if k3 != k4 {
		t.Error("NaN payloads not canonicalized in exact keyspace")
	}
	k5, _ := KeyNumeric(NewInt(3))
	k6, _ := KeyNumeric(NewFloat(3.0))
	if k5 != k6 {
		t.Error("KeyNumeric(3) != KeyNumeric(3.0)")
	}
}
