// Package value implements the SQL value system used throughout the rule
// engine: typed scalar values (integer, float, string, boolean) plus NULL,
// with SQL-style three-valued logic, comparison, arithmetic, and coercion.
//
// The paper (Widom & Finkelstein, SIGMOD 1990, Section 2) assumes a typical
// relational structure in which "a tuple assigns a single value (or null) to
// each column of the table"; this package supplies those values.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind int

// The kinds of SQL values.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is an immutable SQL scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the SQL NULL value.
var Null = Value{kind: KindNull}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload; it panics unless Kind is KindInt.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: Int called on %s", v.kind))
	}
	return v.i
}

// Float returns the float payload; it panics unless Kind is KindFloat.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("value: Float called on %s", v.kind))
	}
	return v.f
}

// Str returns the string payload; it panics unless Kind is KindString.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: Str called on %s", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload; it panics unless Kind is KindBool.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: Bool called on %s", v.kind))
	}
	return v.b
}

// AsFloat converts a numeric value to float64. ok is false for non-numerics
// and NULL.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// IsNumeric reports whether the value is an integer or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value in SQL literal syntax (NULL, 42, 3.5, 'abc',
// TRUE). It is used by result printers and the AST pretty-printer.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.kind))
	}
}

// Equal reports strict equality of two values, with NULL equal only to NULL.
// This is Go-level identity used by tests and set containers, not SQL
// equality (use Compare for SQL semantics, where NULL = NULL is unknown).
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		// Numeric cross-kind equality: 1 == 1.0.
		if v.IsNumeric() && w.IsNumeric() {
			a, _ := v.AsFloat()
			b, _ := w.AsFloat()
			return a == b
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt:
		return v.i == w.i
	case KindFloat:
		return v.f == w.f
	case KindString:
		return v.s == w.s
	case KindBool:
		return v.b == w.b
	default:
		return false
	}
}

// Compare orders two non-NULL values of comparable kinds.
// It returns <0, 0, >0, like strings.Compare. ok is false when either value
// is NULL or the kinds are incomparable (e.g. string vs int); SQL treats
// such comparisons as unknown or errors, and the evaluator maps !ok to
// Unknown.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, true
			case a.i > b.i:
				return 1, true
			default:
				return 0, true
			}
		}
		x, _ := a.AsFloat()
		y, _ := b.AsFloat()
		// NaN (reachable via overflow arithmetic like Inf - Inf) gets a
		// total order — equal to itself, after every other float — so that
		// x<y and x>y both failing cannot fall through to "equal" and the
		// heap-scan and index access paths agree on every comparison.
		if math.IsNaN(x) || math.IsNaN(y) {
			switch {
			case math.IsNaN(x) && math.IsNaN(y):
				return 0, true
			case math.IsNaN(x):
				return 1, true
			default:
				return -1, true
			}
		}
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind != b.kind {
		return 0, false
	}
	switch a.kind {
	case KindString:
		return strings.Compare(a.s, b.s), true
	case KindBool:
		x, y := 0, 0
		if a.b {
			x = 1
		}
		if b.b {
			y = 1
		}
		return x - y, true
	default:
		return 0, false
	}
}

// Tribool is SQL three-valued logic: True, False, Unknown.
type Tribool int

// The three truth values.
const (
	False Tribool = iota
	True
	Unknown
)

// String returns TRUE, FALSE or UNKNOWN.
func (t Tribool) String() string {
	switch t {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	default:
		return "UNKNOWN"
	}
}

// FromBool lifts a Go bool into a Tribool.
func FromBool(b bool) Tribool {
	if b {
		return True
	}
	return False
}

// And is three-valued conjunction.
func (t Tribool) And(u Tribool) Tribool {
	if t == False || u == False {
		return False
	}
	if t == True && u == True {
		return True
	}
	return Unknown
}

// Or is three-valued disjunction.
func (t Tribool) Or(u Tribool) Tribool {
	if t == True || u == True {
		return True
	}
	if t == False && u == False {
		return False
	}
	return Unknown
}

// Not is three-valued negation.
func (t Tribool) Not() Tribool {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// IsTrue reports whether the truth value is definitely True. SQL WHERE
// clauses keep a row only when the predicate is True (not Unknown).
func (t Tribool) IsTrue() bool { return t == True }

// ArithOp names a binary arithmetic operator.
type ArithOp int

// The arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return "?"
	}
}

// Arith applies op to two values with SQL numeric semantics: NULL
// propagates; int op int stays int (except division by zero, which errors);
// mixed int/float promotes to float. String concatenation is supported for
// OpAdd on two strings.
func Arith(op ArithOp, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if op == OpAdd && a.kind == KindString && b.kind == KindString {
		return NewString(a.s + b.s), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("value: cannot apply %s to %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		x, y := a.i, b.i
		switch op {
		case OpAdd:
			return NewInt(x + y), nil
		case OpSub:
			return NewInt(x - y), nil
		case OpMul:
			return NewInt(x * y), nil
		case OpDiv:
			if y == 0 {
				return Null, fmt.Errorf("value: division by zero")
			}
			return NewInt(x / y), nil
		case OpMod:
			if y == 0 {
				return Null, fmt.Errorf("value: division by zero")
			}
			return NewInt(x % y), nil
		}
	}
	x, _ := a.AsFloat()
	y, _ := b.AsFloat()
	switch op {
	case OpAdd:
		return NewFloat(x + y), nil
	case OpSub:
		return NewFloat(x - y), nil
	case OpMul:
		return NewFloat(x * y), nil
	case OpDiv:
		if y == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		return NewFloat(x / y), nil
	case OpMod:
		if y == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		return NewFloat(math.Mod(x, y)), nil
	}
	return Null, fmt.Errorf("value: unknown operator %v", op)
}

// Neg returns the arithmetic negation of a numeric value; NULL propagates.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-a.i), nil
	case KindFloat:
		return NewFloat(-a.f), nil
	default:
		return Null, fmt.Errorf("value: cannot negate %s", a.kind)
	}
}

// Coerce converts v to the requested kind, if a lossless or standard SQL
// assignment conversion exists (int↔float, anything from NULL). It is used
// when storing values into typed columns.
func Coerce(v Value, to Kind) (Value, error) {
	if v.IsNull() || v.kind == to {
		return v, nil
	}
	switch to {
	case KindFloat:
		if v.kind == KindInt {
			return NewFloat(float64(v.i)), nil
		}
	case KindInt:
		if v.kind == KindFloat {
			if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
				return NewInt(int64(v.f)), nil
			}
			return Null, fmt.Errorf("value: cannot store non-integral %s into INTEGER column", v)
		}
	}
	return Null, fmt.Errorf("value: cannot convert %s value %s to %s", v.kind, v, to)
}

// Key is a comparable hash key for a Value, shared by the executor's hash
// joins and the storage layer's secondary indexes. Keys are valid Go map
// keys and their construction allocates nothing for numeric values. Two
// keyspaces exist because Compare's equality is not transitive across
// kinds: KeyExact keeps distinct int64s distinct (int-int comparisons are
// exact), while KeyNumeric collapses every numeric to its float64 image
// (mixed int/float comparisons go through float64). Callers must pick the
// keyspace that matches the comparison they are replacing and never mix
// keys from different keyspaces in one table.
type Key struct {
	kind byte   // 'i' exact integer, 'f' float64 image, 's' string, 'b' bool
	num  int64  // integer value, float image bits, or 0/1 for booleans
	str  string // string payload
}

// KeyExact returns v's key in the exact keyspace of its own kind: integers
// by value, floats by sign-normalized bit pattern, strings and booleans
// directly. Two values of the same kind have equal keys iff Compare reports
// them equal. Values of different numeric kinds may compare equal under
// Compare while their exact keys differ (an int64 above 2^53 and its
// float64 image); use KeyNumeric when one keyspace must span both. ok is
// false for NULL, which has no key (no equality comparison with NULL is
// ever True).
func KeyExact(v Value) (k Key, ok bool) {
	switch v.kind {
	case KindInt:
		return Key{kind: 'i', num: v.i}, true
	case KindFloat:
		return floatKey(v.f), true
	case KindString:
		return Key{kind: 's', str: v.s}, true
	case KindBool:
		if v.b {
			return Key{kind: 'b', num: 1}, true
		}
		return Key{kind: 'b'}, true
	default:
		return Key{}, false
	}
}

// KeyNumeric returns v's key in the float-image keyspace: every numeric
// value is keyed by its float64 image, so an int64 and a float64 share a
// key exactly when Compare reports them equal. Distinct int64s above 2^53
// share an image and hence a key; callers whose values are all integers
// should prefer KeyExact. Non-numeric kinds key as in KeyExact. ok is
// false for NULL.
func KeyNumeric(v Value) (k Key, ok bool) {
	switch v.kind {
	case KindInt:
		return floatKey(float64(v.i)), true
	case KindFloat:
		return floatKey(v.f), true
	default:
		return KeyExact(v)
	}
}

// floatKey keys a float64 by bit pattern, normalizing -0.0 to 0.0 and every
// NaN payload to the canonical NaN so values equal under Compare share a
// key.
func floatKey(f float64) Key {
	if f == 0 {
		f = 0
	}
	if math.IsNaN(f) {
		f = math.NaN()
	}
	return Key{kind: 'f', num: int64(math.Float64bits(f))}
}

// KeyLess is an arbitrary total order over Keys (kind, then numeric
// payload, then string payload). It is not SQL value order; it exists so
// sort-based operators (merge join) can order rows of one keyspace
// consistently on both sides. Keys being compared must come from the same
// keyspace, like map keys.
func KeyLess(a, b Key) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.num != b.num {
		return a.num < b.num
	}
	return a.str < b.str
}

// Like implements the SQL LIKE operator with % (any run) and _ (any single
// character) wildcards. NULL operands yield Unknown.
func Like(s, pattern Value) Tribool {
	if s.IsNull() || pattern.IsNull() {
		return Unknown
	}
	if s.kind != KindString || pattern.kind != KindString {
		return False
	}
	return FromBool(likeMatch(s.s, pattern.s))
}

func likeMatch(s, p string) bool {
	// Iterative matcher with backtracking over the last %.
	var si, pi int
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
