package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
		KindBool:   "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("Null is not NULL")
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v := NewInt(42); v.Int() != 42 || v.Kind() != KindInt {
		t.Errorf("NewInt: got %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 {
		t.Errorf("NewFloat: got %v", v)
	}
	if v := NewString("hi"); v.Str() != "hi" {
		t.Errorf("NewString: got %v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Errorf("NewBool: got %v", v)
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"Int on string", func() { NewString("x").Int() }},
		{"Float on int", func() { NewInt(1).Float() }},
		{"Str on null", func() { Null.Str() }},
		{"Bool on float", func() { NewFloat(1).Bool() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f()
		})
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(3.5), "3.5"},
		{NewString("it's"), "'it''s'"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Null, Null, true},
		{Null, NewInt(0), false},
		{NewInt(1), NewInt(1), true},
		{NewInt(1), NewInt(2), false},
		{NewInt(1), NewFloat(1.0), true}, // cross-kind numeric
		{NewFloat(1.5), NewFloat(1.5), true},
		{NewString("a"), NewString("a"), true},
		{NewString("a"), NewString("b"), false},
		{NewBool(true), NewBool(true), true},
		{NewBool(true), NewBool(false), false},
		{NewString("1"), NewInt(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(1), 1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewInt(1), NewFloat(1.5), -1, true},
		{NewFloat(2.5), NewInt(2), 1, true},
		{NewString("abc"), NewString("abd"), -1, true},
		{NewBool(false), NewBool(true), -1, true},
		{Null, NewInt(1), 0, false},
		{NewInt(1), Null, 0, false},
		{NewString("1"), NewInt(1), 0, false},
		{NewBool(true), NewInt(1), 0, false},
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if ok != c.ok {
			t.Errorf("Compare(%v,%v) ok = %v, want %v", c.a, c.b, ok, c.ok)
			continue
		}
		if ok && sign(cmp) != c.cmp {
			t.Errorf("Compare(%v,%v) = %d, want sign %d", c.a, c.b, cmp, c.cmp)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestTriboolString(t *testing.T) {
	if True.String() != "TRUE" || False.String() != "FALSE" || Unknown.String() != "UNKNOWN" {
		t.Error("Tribool.String wrong")
	}
}

func TestArithOpString(t *testing.T) {
	want := map[ArithOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%"}
	for op, w := range want {
		if op.String() != w {
			t.Errorf("ArithOp(%d) = %q, want %q", int(op), op.String(), w)
		}
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Error("int AsFloat")
	}
	if f, ok := NewFloat(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("float AsFloat")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("null AsFloat should fail")
	}
	if _, ok := NewString("1").AsFloat(); ok {
		t.Error("string AsFloat should fail")
	}
	if _, ok := NewBool(true).AsFloat(); ok {
		t.Error("bool AsFloat should fail")
	}
}

func TestArithFloatMod(t *testing.T) {
	v, err := Arith(OpMod, NewFloat(7.5), NewFloat(2))
	if err != nil || v.Float() != 1.5 {
		t.Errorf("float mod: %v, %v", v, err)
	}
	if _, err := Arith(OpMod, NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float mod by zero accepted")
	}
	// Mixed-kind promotion for every operator.
	for _, op := range []ArithOp{OpAdd, OpSub, OpMul, OpDiv} {
		v, err := Arith(op, NewInt(6), NewFloat(2))
		if err != nil || v.Kind() != KindFloat {
			t.Errorf("mixed %v: %v, %v", op, v, err)
		}
	}
}

func TestTriboolTables(t *testing.T) {
	tv := []Tribool{True, False, Unknown}
	// Kleene logic truth tables.
	and := map[[2]Tribool]Tribool{
		{True, True}: True, {True, False}: False, {True, Unknown}: Unknown,
		{False, True}: False, {False, False}: False, {False, Unknown}: False,
		{Unknown, True}: Unknown, {Unknown, False}: False, {Unknown, Unknown}: Unknown,
	}
	or := map[[2]Tribool]Tribool{
		{True, True}: True, {True, False}: True, {True, Unknown}: True,
		{False, True}: True, {False, False}: False, {False, Unknown}: Unknown,
		{Unknown, True}: True, {Unknown, False}: Unknown, {Unknown, Unknown}: Unknown,
	}
	not := map[Tribool]Tribool{True: False, False: True, Unknown: Unknown}
	for _, a := range tv {
		for _, b := range tv {
			if got := a.And(b); got != and[[2]Tribool{a, b}] {
				t.Errorf("%v AND %v = %v", a, b, got)
			}
			if got := a.Or(b); got != or[[2]Tribool{a, b}] {
				t.Errorf("%v OR %v = %v", a, b, got)
			}
		}
		if got := a.Not(); got != not[a] {
			t.Errorf("NOT %v = %v", a, got)
		}
	}
	if !True.IsTrue() || False.IsTrue() || Unknown.IsTrue() {
		t.Error("IsTrue wrong")
	}
	if FromBool(true) != True || FromBool(false) != False {
		t.Error("FromBool wrong")
	}
}

func TestTriboolDeMorgan(t *testing.T) {
	// NOT(a AND b) == NOT a OR NOT b in Kleene logic.
	tv := []Tribool{True, False, Unknown}
	for _, a := range tv {
		for _, b := range tv {
			if a.And(b).Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan violated for %v, %v", a, b)
			}
		}
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b Value
		want Value
		err  bool
	}{
		{OpAdd, NewInt(2), NewInt(3), NewInt(5), false},
		{OpSub, NewInt(2), NewInt(3), NewInt(-1), false},
		{OpMul, NewInt(4), NewInt(3), NewInt(12), false},
		{OpDiv, NewInt(7), NewInt(2), NewInt(3), false},
		{OpMod, NewInt(7), NewInt(2), NewInt(1), false},
		{OpDiv, NewInt(1), NewInt(0), Null, true},
		{OpMod, NewInt(1), NewInt(0), Null, true},
		{OpAdd, NewFloat(0.5), NewInt(1), NewFloat(1.5), false},
		{OpMul, NewFloat(0.95), NewFloat(100), NewFloat(95), false},
		{OpDiv, NewFloat(1), NewFloat(0), Null, true},
		{OpAdd, Null, NewInt(1), Null, false},
		{OpAdd, NewInt(1), Null, Null, false},
		{OpAdd, NewString("ab"), NewString("cd"), NewString("abcd"), false},
		{OpSub, NewString("a"), NewString("b"), Null, true},
		{OpAdd, NewBool(true), NewInt(1), Null, true},
	}
	for _, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if (err != nil) != c.err {
			t.Errorf("Arith(%v,%v,%v) err = %v, want err=%v", c.op, c.a, c.b, err, c.err)
			continue
		}
		if !c.err && !got.Equal(c.want) {
			t.Errorf("Arith(%v,%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestNeg(t *testing.T) {
	if v, err := Neg(NewInt(5)); err != nil || v.Int() != -5 {
		t.Errorf("Neg int: %v, %v", v, err)
	}
	if v, err := Neg(NewFloat(2.5)); err != nil || v.Float() != -2.5 {
		t.Errorf("Neg float: %v, %v", v, err)
	}
	if v, err := Neg(Null); err != nil || !v.IsNull() {
		t.Errorf("Neg null: %v, %v", v, err)
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("Neg string: expected error")
	}
}

func TestCoerce(t *testing.T) {
	if v, err := Coerce(NewInt(3), KindFloat); err != nil || v.Float() != 3.0 {
		t.Errorf("int→float: %v, %v", v, err)
	}
	if v, err := Coerce(NewFloat(3.0), KindInt); err != nil || v.Int() != 3 {
		t.Errorf("float→int: %v, %v", v, err)
	}
	if _, err := Coerce(NewFloat(3.5), KindInt); err == nil {
		t.Error("non-integral float→int should fail")
	}
	if _, err := Coerce(NewFloat(math.Inf(1)), KindInt); err == nil {
		t.Error("inf→int should fail")
	}
	if v, err := Coerce(Null, KindInt); err != nil || !v.IsNull() {
		t.Errorf("null coerces to anything: %v, %v", v, err)
	}
	if _, err := Coerce(NewString("x"), KindInt); err == nil {
		t.Error("string→int should fail")
	}
	if v, err := Coerce(NewString("x"), KindString); err != nil || v.Str() != "x" {
		t.Errorf("same-kind coerce: %v, %v", v, err)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want Tribool
	}{
		{"hello", "hello", True},
		{"hello", "h%", True},
		{"hello", "%o", True},
		{"hello", "%ell%", True},
		{"hello", "h_llo", True},
		{"hello", "h_l_o", True},
		{"hello", "h_x_o", False},
		{"hello", "", False},
		{"", "%", True},
		{"abc", "a%b%c", True},
		{"abc", "%%%", True},
		{"abc", "_", False},
		{"a", "_", True},
	}
	for _, c := range cases {
		if got := Like(NewString(c.s), NewString(c.p)); got != c.want {
			t.Errorf("Like(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
	if Like(Null, NewString("%")) != Unknown || Like(NewString("x"), Null) != Unknown {
		t.Error("Like with NULL must be Unknown")
	}
	if Like(NewInt(1), NewString("%")) != False {
		t.Error("Like on non-string is False")
	}
}

// Property: Compare is antisymmetric and Equal is consistent with Compare==0
// for same-kind comparable values.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		c1, ok1 := Compare(va, vb)
		c2, ok2 := Compare(vb, va)
		if !ok1 || !ok2 {
			return false
		}
		return sign(c1) == -sign(c2) && ((c1 == 0) == va.Equal(vb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer Arith matches Go arithmetic when no error occurs.
func TestArithIntProperty(t *testing.T) {
	f := func(a, b int64) bool {
		sum, err := Arith(OpAdd, NewInt(a), NewInt(b))
		if err != nil || sum.Int() != a+b {
			return false
		}
		if b != 0 {
			q, err := Arith(OpDiv, NewInt(a), NewInt(b))
			if err != nil || q.Int() != a/b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LIKE with pattern == the string itself (no wildcards in input
// alphabet) always matches.
func TestLikeSelfProperty(t *testing.T) {
	f := func(s string) bool {
		for _, r := range s {
			if r == '%' || r == '_' {
				return true // skip wildcard-containing inputs
			}
		}
		return Like(NewString(s), NewString(s)) == True &&
			Like(NewString(s), NewString("%")) == True
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
