// Checkpoint files: a full database image written atomically, framed with
// the same checksummed record envelope as log segments. Layout:
//
//	CkptMeta   (handle counter, covered LSN, schema script)
//	CkptRows*  (tuple batches, handles included)
//	CkptRules  (rule definitions script)
//	CkptEnd    (completeness marker)
//
// The image preserves system tuple handles — a plain SQL dump would
// reassign them on reload, and then the log tail, which addresses tuples
// by handle, could not be replayed. The schema and rule scripts inside
// the image, though, are exactly what the dump machinery produces.
package wal

import (
	"errors"
	"fmt"
	"io"
)

// Checkpoint is one loaded checkpoint image.
type Checkpoint struct {
	Meta   CkptMeta
	Tables []CkptRows // in written order; a table may span several batches
	Rules  string
}

// CheckpointWriter streams a database image into a checkpoint file. The
// engine calls Meta once, then Rows per tuple batch, then Rules once.
type CheckpointWriter struct {
	w      io.Writer
	lsn    uint64
	epochs []EpochMark
	err    error
}

func (cw *CheckpointWriter) write(kind byte, v any) error {
	if cw.err != nil {
		return cw.err
	}
	payload, err := marshalPayload(v)
	if err != nil {
		cw.err = err
		return err
	}
	// Checkpoint records reuse the frame format; the LSN field carries the
	// covered LSN on every record (it is not a sequence number here).
	if _, err := cw.w.Write(encodeFrame(kind, cw.lsn, payload)); err != nil {
		cw.err = err
		return err
	}
	return nil
}

// Meta writes the image header: the handle counter and the schema script.
// The covered LSN and the epoch table come from the log, not the engine.
func (cw *CheckpointWriter) Meta(lastHandle uint64, schema string) error {
	return cw.write(KindCkptMeta, &CkptMeta{LastHandle: lastHandle, LSN: cw.lsn, Schema: schema, Epochs: cw.epochs})
}

// Rows writes one batch of a table's tuples.
func (cw *CheckpointWriter) Rows(table string, tuples []TupleRec) error {
	return cw.write(KindCkptRows, &CkptRows{Table: table, Tuples: tuples})
}

// Rules writes the rule-definition script.
func (cw *CheckpointWriter) Rules(sql string) error {
	return cw.write(KindCkptRules, &CkptRules{SQL: sql})
}

// writeCheckpoint writes the image atomically: build streams records into
// a temp file which is synced and renamed into place (AtomicWriteFile, the
// same helper soprsh uses for dumps).
func writeCheckpoint(fs FS, path string, lsn uint64, epochs []EpochMark, build func(*CheckpointWriter) error) error {
	return AtomicWriteFile(fs, path, func(w io.Writer) error {
		cw := &CheckpointWriter{w: w, lsn: lsn, epochs: epochs}
		if err := build(cw); err != nil {
			return err
		}
		return cw.write(KindCkptEnd, struct{}{})
	})
}

// readCheckpointParts reads one checkpoint file into raw framed parts. Any
// framing corruption makes the whole file unusable.
func readCheckpointParts(fs FS, path string) ([]CkptPart, error) {
	data, err := readAll(fs, path)
	if err != nil {
		return nil, err
	}
	recs, validLen := scanFrames(data)
	if validLen != len(data) {
		return nil, fmt.Errorf("wal: checkpoint %s corrupt at offset %d", path, validLen)
	}
	parts := make([]CkptPart, len(recs))
	for i, raw := range recs {
		parts[i] = CkptPart{Kind: raw.kind, Payload: raw.payload}
	}
	return parts, nil
}

// loadCheckpoint reads and validates one checkpoint file. Any framing
// error, decode error, missing end marker, or out-of-order section makes
// the whole file unusable — the caller falls back to an older checkpoint.
func loadCheckpoint(fs FS, path string) (*Checkpoint, error) {
	parts, err := readCheckpointParts(fs, path)
	if err != nil {
		return nil, err
	}
	ck, err := AssembleCheckpoint(parts)
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint %s %w", path, err)
	}
	return ck, nil
}

// AssembleCheckpoint reconstructs a checkpoint image from its framed
// parts, validating section order and completeness. The parts may come
// from a checkpoint file (loadCheckpoint) or from a replication bootstrap
// stream — the wire ships exactly the parts a file holds.
func AssembleCheckpoint(parts []CkptPart) (*Checkpoint, error) {
	if len(parts) == 0 {
		return nil, errors.New("is empty")
	}
	ck := &Checkpoint{}
	seenMeta, seenEnd := false, false
	for i, part := range parts {
		if seenEnd {
			return nil, errors.New("has records after the end marker")
		}
		switch part.Kind {
		case KindCkptMeta:
			if i != 0 {
				return nil, errors.New("meta record out of order")
			}
			if err := unmarshalJSON(part.Payload, &ck.Meta); err != nil {
				return nil, err
			}
			seenMeta = true
		case KindCkptRows:
			var rows CkptRows
			if err := unmarshalJSON(part.Payload, &rows); err != nil {
				return nil, err
			}
			ck.Tables = append(ck.Tables, rows)
		case KindCkptRules:
			var rules CkptRules
			if err := unmarshalJSON(part.Payload, &rules); err != nil {
				return nil, err
			}
			ck.Rules = rules.SQL
		case KindCkptEnd:
			seenEnd = true
		default:
			return nil, fmt.Errorf("has unexpected record kind %d", part.Kind)
		}
	}
	if !seenMeta {
		return nil, errors.New("has no meta record")
	}
	if !seenEnd {
		return nil, errors.New("has no end marker (incomplete write)")
	}
	return ck, nil
}
