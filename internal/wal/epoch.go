// Promotion epochs: the log's fencing clock for replication failover.
//
// Every promotion of a replica to primary appends a KindEpoch record to the
// new primary's log. The record gives the epoch a position in the LSN
// stream — its LSN is the *boundary* of the epoch: records below it are
// shared history with the previous epoch, records at or above it belong to
// the new one. The full epoch table (EpochMarks) rides inside every
// checkpoint's meta record, so the boundaries survive pruning and
// bootstrap: a follower restored from a checkpoint image knows exactly
// where every epoch it has ever heard of began.
//
// The table is what makes divergence detection exact instead of
// LSN-heuristic: a follower joining with (epoch e, last LSN n) has forked
// history if and only if n >= BoundaryFor(e) — it holds records at
// positions the newer epoch rewrote. LSN comparison alone cannot see this
// (the zombie's suffix and the new leader's suffix can have identical
// LSNs with different contents).
//
// This file also holds the follower side of durable replication: AppendRaw
// writes records received from the stream verbatim at their original LSNs,
// Reset discards a forked log entirely, and InstallCheckpoint seeds a
// fresh log from a shipped bootstrap image so the follower can itself
// serve as a WAL-shipping source after promotion.
package wal

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
)

// EpochMark records where one promotion epoch begins: the LSN of the epoch
// record that opened it. Records with smaller LSNs predate the epoch.
type EpochMark struct {
	Epoch uint64 `json:"e"`
	LSN   uint64 `json:"lsn"`
}

// EpochRecord is the payload of a KindEpoch log record, appended by a
// promotion. Replaying it has no database effect; it exists to give the
// epoch a durable position in the LSN stream.
type EpochRecord struct {
	Epoch uint64 `json:"epoch"`
}

// Epoch reports the log's current promotion epoch: the highest epoch
// recorded in it (via checkpoint meta or epoch records). A log that has
// never seen a promotion is at epoch 0.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// EpochMarks returns a copy of the epoch table in ascending order. The
// genesis epoch 0 is implicit (it starts at LSN 0 and has no mark).
func (l *Log) EpochMarks() []EpochMark {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]EpochMark, len(l.marks))
	copy(out, l.marks)
	return out
}

// BoundaryFor returns the LSN where the first epoch newer than epoch
// begins. ok is false when no newer epoch exists (epoch is current or
// ahead). A follower whose history is at epoch e with last LSN n has
// diverged from this log exactly when n >= BoundaryFor(e).
func (l *Log) BoundaryFor(epoch uint64) (lsn uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, m := range l.marks {
		if m.Epoch > epoch {
			return m.LSN, true
		}
	}
	return 0, false
}

// HasEpoch reports whether this log's history includes the given epoch.
// Epoch 0 is the implicit genesis and always present. A follower claiming
// a history epoch this log never recorded wrote records under a promotion
// this log never saw — its history is forked even if its LSNs predate
// every boundary we know.
func (l *Log) HasEpoch(epoch uint64) bool {
	if epoch == 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, m := range l.marks {
		if m.Epoch == epoch {
			return true
		}
	}
	return false
}

// AppendEpoch appends an epoch record opening the given epoch, which must
// be greater than the log's current one (epochs only move forward). It
// returns the record's LSN — the new epoch's boundary.
func (l *Log) AppendEpoch(epoch uint64) (uint64, error) {
	payload, err := marshalPayload(&EpochRecord{Epoch: epoch})
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch <= l.epoch {
		return 0, fmt.Errorf("wal: epoch %d is not greater than current epoch %d", epoch, l.epoch)
	}
	lsn := l.nextLSN
	if err := l.appendLocked(KindEpoch, payload); err != nil {
		return 0, err
	}
	l.epoch = epoch
	l.marks = append(l.marks, EpochMark{Epoch: epoch, LSN: lsn})
	return lsn, nil
}

// AppendRaw appends one record received from a replication stream,
// verbatim, at its original LSN — which must be exactly the next LSN this
// log would assign (the stream's strict ordering is the log's). Epoch
// records advance the local epoch table as they land.
func (l *Log) AppendRaw(rec RawRecord) error {
	var er *EpochRecord
	if rec.Kind == KindEpoch {
		er = &EpochRecord{}
		if err := unmarshalJSON(rec.Payload, er); err != nil {
			return fmt.Errorf("wal: append raw epoch record lsn %d: %w", rec.LSN, err)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.LSN != l.nextLSN {
		return fmt.Errorf("wal: append raw record lsn %d, want %d", rec.LSN, l.nextLSN)
	}
	if er != nil && er.Epoch <= l.epoch {
		return fmt.Errorf("wal: raw epoch record %d does not advance current epoch %d", er.Epoch, l.epoch)
	}
	if err := l.appendLocked(rec.Kind, rec.Payload); err != nil {
		return err
	}
	if er != nil {
		l.epoch = er.Epoch
		l.marks = append(l.marks, EpochMark{Epoch: er.Epoch, LSN: rec.LSN})
	}
	return nil
}

// Reset discards the log entirely: every segment and checkpoint file is
// removed, the epoch table is cleared, and appending restarts at LSN 1. A
// follower calls it when the primary reports divergence — its local
// history forked from the leader's and cannot be reconciled in place.
// Retention pins are dropped (their holders' sessions are broken by the
// same event that forced the reset).
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.seg != nil {
		_ = l.seg.Close() // contents are being discarded; close errors too
		l.seg = nil
	}
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: reset: list dir: %w", err)
	}
	var firstErr error
	for _, name := range names {
		_, isSeg := parseSeq(name, segPrefix, segSuffix)
		_, isCkpt := parseSeq(name, ckptPrefix, ckptSuffix)
		if !isSeg && !isCkpt {
			continue
		}
		if err := l.fs.Remove(filepath.Join(l.dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := l.fs.SyncDir(l.dir); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return fmt.Errorf("wal: reset: %w", firstErr)
	}
	l.nextLSN = 1
	l.durable = 0
	l.segSize = 0
	l.epoch = 0
	l.marks = nil
	l.failed = nil
	l.pins = nil
	return l.startSegment(1)
}

// InstallCheckpoint seeds the log from a bootstrap image shipped as raw
// checkpoint parts: the image is validated, written as a local checkpoint
// file, and the log's position jumps to the image's LSN + 1 (adopting the
// image's epoch table). The log must not already hold records past the
// image — call Reset first when rejoining after divergence. This is what
// lets a durable follower later serve as a WAL-shipping source itself: its
// local log carries the same coverage guarantee as the primary's.
func (l *Log) InstallCheckpoint(parts []CkptPart) (*Checkpoint, error) {
	ck, err := AssembleCheckpoint(parts)
	if err != nil {
		return nil, fmt.Errorf("wal: install checkpoint: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, errors.New("wal: log is closed")
	}
	if l.nextLSN > ck.Meta.LSN+1 {
		return nil, fmt.Errorf("wal: log at lsn %d already holds records past checkpoint lsn %d; reset before installing", l.nextLSN-1, ck.Meta.LSN)
	}
	path := filepath.Join(l.dir, ckptName(ck.Meta.LSN))
	err = AtomicWriteFile(l.fs, path, func(w io.Writer) error {
		for _, part := range parts {
			if _, err := w.Write(encodeFrame(part.Kind, ck.Meta.LSN, part.Payload)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("wal: install checkpoint: %w", err)
	}
	// Existing segments hold only records the image covers (guarded above);
	// drop them and restart the segment stream right after the image.
	if l.seg != nil {
		_ = l.seg.Close()
		l.seg = nil
	}
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: install checkpoint: list dir: %w", err)
	}
	for _, name := range names {
		if _, ok := parseSeq(name, segPrefix, segSuffix); ok {
			_ = l.fs.Remove(filepath.Join(l.dir, name)) // best effort; covered by the image
		}
	}
	l.nextLSN = ck.Meta.LSN + 1
	l.durable = ck.Meta.LSN
	l.segSize = 0
	l.marks = append([]EpochMark(nil), ck.Meta.Epochs...)
	l.epoch = 0
	if len(l.marks) > 0 {
		l.epoch = l.marks[len(l.marks)-1].Epoch
	}
	if err := l.startSegment(l.nextLSN); err != nil {
		return nil, err
	}
	return ck, nil
}
