// Filesystem abstraction for the write-ahead log. All WAL and checkpoint
// I/O goes through the FS interface so that tests can inject faults at any
// byte (see FaultFS) and run entirely in memory (see MemFS). Production
// code uses OS, a thin wrapper over the os package.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the subset of *os.File the log needs.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the log writes through. Paths are plain
// slash-joined strings; implementations may interpret them however they
// like as long as they are consistent.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create truncates or creates name for writing.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate shortens name to size bytes.
	Truncate(name string, size int64) error
	// Size reports the byte size of name.
	Size(name string) (int64, error)
	// SyncDir flushes directory metadata (created/renamed/removed entries)
	// for dir. Implementations without directory handles may no-op.
	SyncDir(dir string) error
}

// ---------------------------------------------------------------------------
// OS filesystem
// ---------------------------------------------------------------------------

// OS is the production FS: the real filesystem via package os.
type OS struct{}

func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OS) Create(name string) (File, error) { return os.Create(name) }

func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// ---------------------------------------------------------------------------
// Atomic file replacement
// ---------------------------------------------------------------------------

// AtomicWriteFile writes a file without ever exposing a partial version at
// path: the content goes to a temp file in the same directory, is fsynced,
// and is renamed over path, after which the directory itself is synced.
// A crash at any point leaves either the old file or the new one, never a
// torn mix. The soprsh .dump command and the WAL checkpoint writer share
// this helper.
func AtomicWriteFile(fs FS, path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		_ = f.Close()      // double Close is harmless on every FS here
		_ = fs.Remove(tmp) // best effort: the temp file is garbage either way
		return err
	}
	if err := write(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		return cleanup(err)
	}
	return fs.SyncDir(dir)
}

// ---------------------------------------------------------------------------
// In-memory filesystem
// ---------------------------------------------------------------------------

// MemFS is an in-memory FS for tests. It tracks, per file, how many bytes
// have been made durable by Sync, so a test can simulate an operating
// system crash that discards unsynced page-cache contents (DropUnsynced).
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	data   []byte
	synced int // bytes guaranteed durable
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

// DropUnsynced simulates an OS crash: every file loses the bytes written
// after its last Sync.
func (m *MemFS) DropUnsynced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		if f.synced < len(f.data) {
			f.data = f.data[:f.synced]
		}
	}
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[filepath.Clean(dir)] = true
	return nil
}

func (m *MemFS) open(name string, truncate, create bool) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	f, ok := m.files[name]
	if !ok {
		if !create {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		f = &memFile{}
		m.files[name] = f
	} else if truncate {
		f.data = nil
		f.synced = 0
	}
	return &memHandle{fs: m, f: f, pos: 0, atEnd: true}, nil
}

func (m *MemFS) Create(name string) (File, error)     { return m.open(name, true, true) }
func (m *MemFS) OpenAppend(name string) (File, error) { return m.open(name, false, true) }

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	f, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{fs: m, f: f, readOnly: true}, nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	f, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	m.files[newname] = f
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	f, ok := m.files[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	}
	if f.synced > len(f.data) {
		f.synced = len(f.data)
	}
	return nil
}

func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

func (m *MemFS) SyncDir(string) error { return nil }

// memHandle is one open descriptor on a memFile.
type memHandle struct {
	fs       *MemFS
	f        *memFile
	pos      int
	atEnd    bool // writes append regardless of pos (O_APPEND)
	readOnly bool
	closed   bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.pos >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.readOnly {
		return 0, errors.New("memfs: write to read-only handle")
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

// ErrInjected is the root of every failure produced by FaultFS, so tests
// can tell injected faults from genuine bugs.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps an FS with byte- and call-level failpoints. Counters are
// global across all files opened through it. The zero failpoint values
// disable each fault. After CrashAtByte triggers, the FaultFS is "dead":
// every subsequent write and sync fails, modeling a machine that stops
// mid-write and never comes back within the process lifetime.
type FaultFS struct {
	Inner FS

	mu      sync.Mutex
	writes  int
	syncs   int
	written int64
	crashed bool

	// FailWriteN fails the Nth write call (1-based) without writing.
	FailWriteN int
	// ShortWriteN writes only the first half of the Nth write, then fails.
	ShortWriteN int
	// FailSyncN fails the Nth Sync call (the data was written, so it may
	// or may not survive — exactly the ambiguity a real fsync failure has).
	FailSyncN int
	// CrashAtByte, when > 0, lets writes through until the global written
	// byte count reaches it; the write crossing the boundary is torn at
	// the boundary and everything after fails.
	CrashAtByte int64
}

// NewFaultFS wraps inner with all failpoints disabled.
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{Inner: inner} }

// Crashed reports whether the CrashAtByte failpoint has triggered.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// checkWrite decides the fate of one write of len(p) bytes: how many bytes
// to pass through and which error (if any) to return after them.
func (f *FaultFS) checkWrite(p []byte) (allow int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, fmt.Errorf("%w: crashed", ErrInjected)
	}
	f.writes++
	if f.FailWriteN > 0 && f.writes == f.FailWriteN {
		return 0, fmt.Errorf("%w: write %d failed", ErrInjected, f.writes)
	}
	if f.ShortWriteN > 0 && f.writes == f.ShortWriteN {
		return len(p) / 2, fmt.Errorf("%w: short write %d", ErrInjected, f.writes)
	}
	if f.CrashAtByte > 0 && f.written+int64(len(p)) >= f.CrashAtByte {
		f.crashed = true
		allow = int(f.CrashAtByte - f.written)
		if allow < 0 {
			allow = 0
		}
		f.written += int64(allow)
		return allow, fmt.Errorf("%w: crash at byte %d", ErrInjected, f.CrashAtByte)
	}
	f.written += int64(len(p))
	return len(p), nil
}

func (f *FaultFS) checkSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("%w: crashed", ErrInjected)
	}
	f.syncs++
	if f.FailSyncN > 0 && f.syncs == f.FailSyncN {
		return fmt.Errorf("%w: sync %d failed", ErrInjected, f.syncs)
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error { return f.Inner.MkdirAll(dir) }

func (f *FaultFS) Create(name string) (File, error) {
	inner, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	inner, err := f.Inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Open(name string) (File, error) { return f.Inner.Open(name) }

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }

func (f *FaultFS) Rename(oldname, newname string) error {
	if f.Crashed() {
		return fmt.Errorf("%w: crashed", ErrInjected)
	}
	return f.Inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error { return f.Inner.Remove(name) }

func (f *FaultFS) Truncate(name string, size int64) error { return f.Inner.Truncate(name, size) }

func (f *FaultFS) Size(name string) (int64, error) { return f.Inner.Size(name) }

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.checkSync(); err != nil {
		return err
	}
	return f.Inner.SyncDir(dir)
}

// faultFile applies the FaultFS failpoints to one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *faultFile) Write(p []byte) (int, error) {
	allow, ferr := f.fs.checkWrite(p)
	n := 0
	if allow > 0 {
		var err error
		n, err = f.inner.Write(p[:allow])
		if err != nil {
			return n, err
		}
	}
	if ferr != nil {
		return n, ferr
	}
	return len(p), nil
}

func (f *faultFile) Sync() error {
	if err := f.fs.checkSync(); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
