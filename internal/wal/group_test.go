// Tests for group commit: deferred commit durability (AppendCommitAsync +
// WaitDurable), leader/follower fsync sharing and its accounting, sync
// failures poisoning every parked committer, and the background
// interval-sync loop's sticky failure.
package wal

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitSequential: committers arriving one at a time each lead
// their own group of one — the accounting must show exactly that, and
// every record must be durable at WaitDurable return.
func TestGroupCommitSequential(t *testing.T) {
	mem := NewMemFS()
	l, _ := openTest(t, mem, Options{Policy: SyncAlways})
	const n = 5
	for i := 0; i < n; i++ {
		lsn, err := l.AppendCommitAsync(commitRec(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.GroupCommits != n || st.GroupedTxns != n {
		t.Fatalf("GroupCommits=%d GroupedTxns=%d, want %d and %d", st.GroupCommits, st.GroupedTxns, n, n)
	}
	if got := st.TxnsPerSync(); got != 1 {
		t.Fatalf("TxnsPerSync = %v, want 1", got)
	}
	// A second wait on an already-durable LSN returns without a new sync.
	if err := l.WaitDurable(uint64(n)); err != nil {
		t.Fatal(err)
	}
	if st2 := l.Stats(); st2.Syncs != st.Syncs {
		t.Fatalf("redundant WaitDurable synced: %d -> %d", st.Syncs, st2.Syncs)
	}

	// Everything acked must be on disk: drop unsynced bytes and recover.
	mem.DropUnsynced()
	_, rec, err := Open(testDir, Options{FS: mem, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n)
	}
}

// TestGroupCommitConcurrentDurable hammers the commit queue from many
// goroutines and checks the invariants that must hold under any
// interleaving: every acked record survives a crash, every fsync
// acknowledged at least its leader, and no committer is counted twice
// (GroupCommits <= GroupedTxns <= total commits).
func TestGroupCommitConcurrentDurable(t *testing.T) {
	mem := NewMemFS()
	l, _ := openTest(t, mem, Options{Policy: SyncAlways})
	const (
		committers = 16
		perC       = 25
		total      = committers * perC
	)
	var wg sync.WaitGroup
	errc := make(chan error, committers)
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				if err := l.AppendCommit(commitRec(c*perC + i)); err != nil {
					errc <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.GroupCommits < 1 || st.GroupCommits > st.GroupedTxns || st.GroupedTxns > total {
		t.Fatalf("accounting out of range: GroupCommits=%d GroupedTxns=%d total=%d",
			st.GroupCommits, st.GroupedTxns, total)
	}
	if got := st.TxnsPerSync(); got < 1 {
		t.Fatalf("TxnsPerSync = %v, want >= 1", got)
	}
	mem.DropUnsynced()
	_, rec, err := Open(testDir, Options{FS: mem, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != total {
		t.Fatalf("recovered %d records, want %d (every acked commit must be durable)", len(rec.Records), total)
	}
}

// TestGroupCommitFaultSyncPoisonsWaiters: when the group fsync fails, the
// leader and every parked follower must fail — none of their transactions
// may be acknowledged — and the log must be sticky-dead afterwards.
func TestGroupCommitFaultSyncPoisonsWaiters(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, _ := openTest(t, ffs, Options{Policy: SyncAlways})
	// Open consumed sync #1 (the directory sync); commit appends no longer
	// sync inline, so the next sync is the group leader's: fail it.
	ffs.FailSyncN = 2

	const committers = 8
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = l.AppendCommit(commitRec(c))
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err == nil {
			t.Fatalf("committer %d was acknowledged across a failed fsync", c)
		}
		if !errors.Is(err, ErrInjected) && !errors.Is(err, ErrLogFailed) {
			t.Fatalf("committer %d: err = %v, want injected or log-failed", c, err)
		}
	}
	if err := l.AppendCommit(commitRec(99)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after poisoned group sync: %v, want ErrLogFailed", err)
	}
	if st := l.Stats(); st.GroupCommits != 0 {
		t.Fatalf("failed fsync counted as a group commit: %d", st.GroupCommits)
	}
}

// TestFaultIntervalSyncPoisonsLog is the regression test for the
// background sync loop swallowing fsync errors: under SyncInterval, a
// failed ticker sync must poison the log so the next Append (and any
// durability wait) reports ErrLogFailed instead of silently continuing
// over an unsyncable file.
func TestFaultIntervalSyncPoisonsLog(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, _ := openTest(t, ffs, Options{Policy: SyncInterval, Interval: time.Millisecond})
	defer l.Close() //nolint:errcheck // the log is poisoned by design
	// Sync #1 was the directory sync at open; the ticker's first segment
	// sync is #2.
	ffs.FailSyncN = 2
	if err := l.AppendCommit(commitRec(0)); err != nil {
		t.Fatalf("append before failing sync: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background sync failure never poisoned the log")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.AppendCommit(commitRec(1)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after failed background sync: %v, want ErrLogFailed", err)
	}
	if err := l.WaitDurable(1); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("WaitDurable after failed background sync: %v, want ErrLogFailed", err)
	}
}
