// The segmented append-only log. A data directory holds numbered segment
// files plus checkpoint files:
//
//	wal-0000000000000001.log      records with LSN >= 1
//	wal-0000000000000042.log      records with LSN >= 42
//	checkpoint-0000000000000041.ckpt   full state through LSN 41
//
// A segment's name is the LSN of its first record; LSNs within a segment
// are consecutive, so every record's LSN is implied by its position and
// verified against the one stored in its frame. Open replays the newest
// loadable checkpoint plus the record tail after it, truncating a torn
// final segment. Append goes to the last segment, rotating at SegmentSize.
// WriteCheckpoint rotates, writes the checkpoint atomically, and prunes
// segments (and older checkpoints) that the new checkpoint covers.
package wal

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a transaction reported
	// committed is durable. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer: a crash loses at most the
	// last interval's transactions, never corrupts the log.
	SyncInterval
	// SyncNever leaves persistence to the operating system.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy converts a -fsync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// Options configure a Log at Open. Zero values select the defaults.
type Options struct {
	// FS is the filesystem to write through (default the real one).
	FS FS
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background sync period for SyncInterval (default
	// 100ms).
	Interval time.Duration
	// SegmentSize is the rotation threshold in bytes (default 4 MiB).
	SegmentSize int64
	// KeepCheckpoints is how many checkpoint files survive pruning
	// (default 2: the newest plus one fallback).
	KeepCheckpoints int
}

const (
	defaultInterval    = 100 * time.Millisecond
	defaultSegmentSize = 4 << 20
	segPrefix          = "wal-"
	segSuffix          = ".log"
	ckptPrefix         = "checkpoint-"
	ckptSuffix         = ".ckpt"
)

// ErrLogFailed wraps the first append or sync error; once it happens the
// log refuses all further writes. The in-memory database may be ahead of
// the durable log at that point, so continuing to acknowledge commits
// would lie to clients — the owner should surface the error and stop.
var ErrLogFailed = errors.New("wal: log failed; no further writes accepted")

// Stats are cumulative counters over the log's lifetime.
type Stats struct {
	Appends int64 // records appended
	Bytes   int64 // bytes appended (framing included)
	Syncs   int64 // fsync calls issued
	// Group commit (SyncAlways): GroupCommits counts leader fsyncs issued
	// from WaitDurable, GroupedTxns counts the parked committers those
	// fsyncs covered. GroupedTxns/GroupCommits is the amortization factor
	// — how many transactions each durable-path fsync acknowledged.
	GroupCommits int64
	GroupedTxns  int64
}

// TxnsPerSync reports the group-commit amortization factor: committers
// acknowledged per leader fsync. 0 before any group commit; 1.0 means no
// overlap (every committer synced alone); >1 means fsyncs were shared.
func (s Stats) TxnsPerSync() float64 {
	if s.GroupCommits == 0 {
		return 0
	}
	return float64(s.GroupedTxns) / float64(s.GroupCommits)
}

// Recovery reports what Open found in the data directory.
type Recovery struct {
	// Checkpoint is the newest loadable checkpoint, nil if none.
	Checkpoint *Checkpoint
	// Records is the log tail after the checkpoint, in LSN order.
	Records []Record
	// TruncatedBytes counts torn-tail bytes discarded from the final
	// segment.
	TruncatedBytes int64
	// SkippedCheckpoints lists checkpoint files that failed to load and
	// were passed over for an older one.
	SkippedCheckpoints []string
}

// Log is an open write-ahead log. Its methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	fs   FS
	dir  string
	opts Options

	seg     File   // active segment
	segName string // its path
	segSize int64
	nextLSN uint64
	stats   Stats
	failed  error // sticky first write failure
	closed  bool

	// Group commit (SyncAlways; see WaitDurable). durable is the highest
	// LSN known fsynced: every inline sync (append, rotate, Sync, Close)
	// advances it, and a group-commit leader advances it to the horizon
	// its fsync covered. syncing marks a leader mid-fsync outside l.mu —
	// at most one at a time, so concurrent committers coalesce onto the
	// in-flight sync instead of each issuing their own. groupWake is
	// signaled when durable advances, the leader slot frees, or the log
	// fails or closes. parked counts the committers currently inside
	// WaitDurable per LSN, so a leader can account exactly how many
	// transactions its fsync acknowledged.
	durable   uint64
	syncing   bool
	groupWake *sync.Cond
	parked    map[uint64]int

	syncStop chan struct{}
	syncDone chan struct{}

	// pins are retention horizons held by stream readers (see tail.go):
	// prune keeps every record at or after the minimum pinned LSN.
	pins map[*Pin]uint64
	// appendCh wakes tailing readers parked in Appended.
	appendCh chan struct{}

	// epoch is the current promotion epoch; marks is the full ascending
	// epoch table (see epoch.go). Both recovered at Open from the newest
	// checkpoint's meta plus any epoch records in the tail.
	epoch uint64
	marks []EpochMark
}

func segName(firstLSN uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, firstLSN, segSuffix)
}

func ckptName(lsn uint64) string {
	return fmt.Sprintf("%s%016d%s", ckptPrefix, lsn, ckptSuffix)
}

// parseSeq extracts the LSN from a segment or checkpoint file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open opens (creating if necessary) the log in dir and returns the
// recovered state. The caller replays Recovery into its engine before
// appending. Open never panics on corrupt input: a torn final segment is
// truncated; a checkpoint that fails to load falls back to an older one;
// anything else — corruption that would silently lose acknowledged
// transactions — is a fatal error, and the caller must refuse to serve.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if opts.FS == nil {
		opts.FS = OS{}
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if opts.KeepCheckpoints <= 0 {
		opts.KeepCheckpoints = 2
	}
	fs := opts.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list dir: %w", err)
	}

	var segStarts []uint64
	var ckptLSNs []uint64
	for _, name := range names {
		if n, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segStarts = append(segStarts, n)
		}
		if n, ok := parseSeq(name, ckptPrefix, ckptSuffix); ok {
			ckptLSNs = append(ckptLSNs, n)
		}
	}
	sort.Slice(segStarts, func(i, j int) bool { return segStarts[i] < segStarts[j] })
	sort.Slice(ckptLSNs, func(i, j int) bool { return ckptLSNs[i] < ckptLSNs[j] })

	rec := &Recovery{}

	// Newest loadable checkpoint wins; unreadable ones are skipped with a
	// note (the fallback is only sound because segments are pruned after,
	// never before, a checkpoint is fully durable).
	ckptLSN := uint64(0)
	for i := len(ckptLSNs) - 1; i >= 0; i-- {
		path := filepath.Join(dir, ckptName(ckptLSNs[i]))
		ck, err := loadCheckpoint(fs, path)
		if err != nil {
			rec.SkippedCheckpoints = append(rec.SkippedCheckpoints, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		rec.Checkpoint = ck
		ckptLSN = ck.Meta.LSN
		break
	}

	// Read every segment; only the last may be torn.
	type segInfo struct {
		start uint64
		recs  []rawRecord
	}
	var segs []segInfo
	for i, start := range segStarts {
		path := filepath.Join(dir, segName(start))
		data, err := readAll(fs, path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read segment %s: %w", path, err)
		}
		recs, validLen := scanFrames(data)
		if validLen < len(data) {
			if i != len(segStarts)-1 {
				return nil, nil, fmt.Errorf("wal: segment %s is corrupt at offset %d but is not the final segment; refusing to recover past a hole", path, validLen)
			}
			if err := fs.Truncate(path, int64(validLen)); err != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
			rec.TruncatedBytes = int64(len(data) - validLen)
		}
		for j, r := range recs {
			if want := start + uint64(j); r.lsn != want {
				return nil, nil, fmt.Errorf("wal: segment %s record %d has lsn %d, want %d", path, j, r.lsn, want)
			}
		}
		segs = append(segs, segInfo{start: start, recs: recs})
	}

	// Continuity: each segment must pick up where the previous ended.
	next := uint64(0)
	for _, s := range segs {
		if next != 0 && s.start != next {
			return nil, nil, fmt.Errorf("wal: gap in log: segment %s starts at lsn %d, expected %d", segName(s.start), s.start, next)
		}
		next = s.start + uint64(len(s.recs))
	}

	// Coverage: the loaded checkpoint plus the surviving segments must
	// reach back to LSN 1 with no hole between them. If the newest
	// checkpoint failed to load, the records it covered may already be
	// pruned — recovering from an older checkpoint (or from nothing) would
	// then silently drop acknowledged transactions, so refuse instead.
	if len(segs) > 0 && segs[0].start > ckptLSN+1 {
		return nil, nil, fmt.Errorf("wal: checkpoint covers through lsn %d but the oldest segment starts at lsn %d; records between them were pruned against a checkpoint that did not load", ckptLSN, segs[0].start)
	}
	if len(segs) == 0 && rec.Checkpoint == nil && len(rec.SkippedCheckpoints) > 0 {
		return nil, nil, fmt.Errorf("wal: no checkpoint loads and no log segments survive: %s", strings.Join(rec.SkippedCheckpoints, "; "))
	}

	// Decode the tail after the checkpoint.
	for _, s := range segs {
		for _, raw := range s.recs {
			if raw.lsn <= ckptLSN {
				continue
			}
			r, err := decodeRecord(raw)
			if err != nil {
				return nil, nil, err
			}
			rec.Records = append(rec.Records, r)
		}
	}
	if len(rec.Records) > 0 && rec.Records[0].LSN != ckptLSN+1 {
		return nil, nil, fmt.Errorf("wal: checkpoint covers through lsn %d but the oldest surviving record is lsn %d; segments are missing", ckptLSN, rec.Records[0].LSN)
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		if tail := last.start + uint64(len(last.recs)); ckptLSN+1 > tail {
			// The checkpoint is newer than every surviving record; fine —
			// appends resume after the checkpoint LSN.
			next = ckptLSN + 1
		}
	} else {
		next = ckptLSN + 1
	}
	if next == 0 {
		next = 1
	}

	l := &Log{fs: fs, dir: dir, opts: opts, nextLSN: next, parked: make(map[uint64]int)}
	l.groupWake = sync.NewCond(&l.mu)
	// Everything recovered is on disk already; durability waits start at
	// the recovered horizon.
	l.durable = next - 1

	// Rebuild the epoch table: the checkpoint's meta carries every boundary
	// it covered; epoch records in the tail extend it.
	if rec.Checkpoint != nil {
		l.marks = append(l.marks, rec.Checkpoint.Meta.Epochs...)
	}
	for _, r := range rec.Records {
		if r.Kind == KindEpoch && r.Epoch != nil {
			l.marks = append(l.marks, EpochMark{Epoch: r.Epoch.Epoch, LSN: r.LSN})
		}
	}
	for i := 1; i < len(l.marks); i++ {
		if l.marks[i].Epoch <= l.marks[i-1].Epoch || l.marks[i].LSN <= l.marks[i-1].LSN {
			return nil, nil, fmt.Errorf("wal: epoch table out of order: epoch %d at lsn %d follows epoch %d at lsn %d",
				l.marks[i].Epoch, l.marks[i].LSN, l.marks[i-1].Epoch, l.marks[i-1].LSN)
		}
	}
	if len(l.marks) > 0 {
		l.epoch = l.marks[len(l.marks)-1].Epoch
	}

	// Open the active segment: the last one if its LSNs continue the
	// stream, else a fresh segment starting at nextLSN.
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		if last.start+uint64(len(last.recs)) == next {
			l.segName = filepath.Join(dir, segName(last.start))
			size, err := fs.Size(l.segName)
			if err != nil {
				return nil, nil, fmt.Errorf("wal: stat active segment: %w", err)
			}
			f, err := fs.OpenAppend(l.segName)
			if err != nil {
				return nil, nil, fmt.Errorf("wal: open active segment: %w", err)
			}
			l.seg, l.segSize = f, size
		}
	}
	if l.seg == nil {
		if err := l.startSegment(next); err != nil {
			return nil, nil, err
		}
	}

	if opts.Policy == SyncInterval {
		l.syncStop = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, rec, nil
}

// readAll reads a whole file through the FS.
func readAll(fs FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	return data, nil
}

// startSegment creates and switches to a fresh segment whose first record
// will be firstLSN. Callers hold l.mu (or are in Open, pre-publication).
func (l *Log) startSegment(firstLSN uint64) error {
	name := filepath.Join(l.dir, segName(firstLSN))
	f, err := l.fs.Create(name)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync dir after creating segment: %w", err)
	}
	l.seg, l.segName, l.segSize = f, name, 0
	return nil
}

// rotate closes the active segment (after syncing it) and starts a new one.
// Callers hold l.mu.
func (l *Log) rotate() error {
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync before rotate: %w", err)
	}
	l.stats.Syncs++
	l.advanceDurable(l.nextLSN - 1)
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	return l.startSegment(l.nextLSN)
}

// advanceDurable records that every LSN through lsn is fsynced. Callers
// hold l.mu and have just observed a successful sync covering lsn.
func (l *Log) advanceDurable(lsn uint64) {
	if lsn > l.durable {
		l.durable = lsn
	}
}

// AppendCommit appends one committed transaction's net effect. With
// SyncAlways the record is durable when AppendCommit returns.
func (l *Log) AppendCommit(rec *CommitRecord) error {
	lsn, err := l.AppendCommitAsync(rec)
	if err != nil {
		return err
	}
	return l.WaitDurable(lsn)
}

// AppendCommitAsync appends one committed transaction's net effect
// without waiting for durability and returns the record's LSN. The
// caller must not acknowledge the transaction until WaitDurable(lsn)
// returns nil: keeping the fsync out of the append — and out of
// whatever write lock the caller holds — is what lets concurrent
// committers share one group-commit fsync.
func (l *Log) AppendCommitAsync(rec *CommitRecord) (uint64, error) {
	payload, err := marshalPayload(rec)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.nextLSN
	if err := l.appendLockedSync(KindCommit, payload, false); err != nil {
		return 0, err
	}
	return lsn, nil
}

// AppendDDL appends one definition statement.
func (l *Log) AppendDDL(stmt string) error {
	payload, err := marshalPayload(&DDLRecord{Stmt: stmt})
	if err != nil {
		return err
	}
	return l.append(KindDDL, payload)
}

func (l *Log) append(kind byte, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(kind, payload)
}

// appendLocked frames and writes one record at l.nextLSN. Callers hold l.mu.
func (l *Log) appendLocked(kind byte, payload []byte) error {
	return l.appendLockedSync(kind, payload, true)
}

// appendLockedSync is appendLocked with the SyncAlways inline fsync made
// optional: commit records pass sync=false and defer their durability to
// WaitDurable, so the fsync happens outside the append (and outside the
// caller's write lock) where concurrent committers can share it. Callers
// hold l.mu.
func (l *Log) appendLockedSync(kind byte, payload []byte, sync bool) error {
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrLogFailed, l.failed)
	}
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.segSize >= l.opts.SegmentSize {
		if err := l.rotate(); err != nil {
			l.failed = err
			return err
		}
	}
	frame := encodeFrame(kind, l.nextLSN, payload)
	n, err := l.seg.Write(frame)
	l.segSize += int64(n)
	l.stats.Bytes += int64(n)
	if err != nil {
		// The tail may be torn; recovery will truncate it. Refuse further
		// writes so no later record can make the tear look like a hole.
		l.failed = err
		return fmt.Errorf("wal: append: %w", err)
	}
	if sync && l.opts.Policy == SyncAlways {
		if err := l.seg.Sync(); err != nil {
			l.failed = err
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.stats.Syncs++
		l.advanceDurable(l.nextLSN)
	}
	l.nextLSN++
	l.stats.Appends++
	l.signalAppend()
	return nil
}

// Sync forces the active segment to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrLogFailed, l.failed)
	}
	if l.closed || l.seg == nil {
		return nil
	}
	if err := l.seg.Sync(); err != nil {
		l.failed = err
		l.groupWake.Broadcast()
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.stats.Syncs++
	l.advanceDurable(l.nextLSN - 1)
	l.groupWake.Broadcast()
	return nil
}

// WaitDurable blocks until every record with LSN at or below lsn is
// fsynced, or returns the log's sticky error — after poisoning, no
// commit is ever acknowledged again. Under SyncAlways this is the group
// commit point: committers append under the log mutex, then park here;
// one becomes the leader, captures the current append horizon, issues a
// single fsync outside the mutex (so later committers keep appending),
// and wakes every parked committer the fsync covered. Committers whose
// records landed during the in-flight fsync are beyond the captured
// horizon and wait for the next leader — an fsync only ever acknowledges
// the prefix it provably covered. Under SyncInterval and SyncNever it
// returns immediately: durability is the background syncer's (or the
// operating system's) business, and the caller accepted that window.
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrLogFailed, l.failed)
	}
	if l.opts.Policy != SyncAlways || lsn <= l.durable {
		return nil
	}
	if lsn >= l.nextLSN {
		return fmt.Errorf("wal: wait durable lsn %d: not appended (next lsn %d)", lsn, l.nextLSN)
	}
	l.parked[lsn]++
	defer func() {
		if l.parked[lsn]--; l.parked[lsn] <= 0 {
			delete(l.parked, lsn)
		}
	}()
	for {
		if l.failed != nil {
			return fmt.Errorf("%w: %w", ErrLogFailed, l.failed)
		}
		if lsn <= l.durable {
			return nil
		}
		if l.closed {
			return errors.New("wal: log is closed")
		}
		if l.syncing {
			l.groupWake.Wait()
			continue
		}
		// Become the leader: capture the covered horizon and the active
		// segment under the mutex, fsync outside it, then acknowledge
		// exactly the captured prefix.
		l.syncing = true
		seg, target := l.seg, l.nextLSN-1
		l.mu.Unlock()
		serr := seg.Sync()
		l.mu.Lock()
		l.syncing = false
		if serr != nil {
			if l.failed == nil && l.seg != seg && l.durable >= target {
				// The segment was rotated away (or checkpointed) while we
				// were syncing it: rotation fsyncs a segment before closing
				// it and advances the durable horizon, so the captured
				// prefix is already safe and the error is just "file
				// closed". A genuine rotation-sync failure would have set
				// l.failed, which the check above rules out.
				l.groupWake.Broadcast()
				continue
			}
			if l.failed == nil {
				l.failed = serr
			}
			l.groupWake.Broadcast()
			return fmt.Errorf("wal: sync: %w", serr)
		}
		l.stats.Syncs++
		prev := l.durable
		l.advanceDurable(target)
		l.stats.GroupCommits++
		// Count the committers this fsync acknowledged: parked entries in
		// (prev durable, target]. Entries at or below the previous horizon
		// were satisfied by an earlier sync and just have not woken yet —
		// counting them again would inflate TxnsPerSync.
		for plsn, n := range l.parked {
			if plsn > prev && plsn <= target {
				l.stats.GroupedTxns += int64(n)
			}
		}
		l.groupWake.Broadcast()
	}
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := l.Sync(); err != nil {
				// The sticky error is recorded: every subsequent Append,
				// WaitDurable, and commit acknowledgement fails with
				// ErrLogFailed, so a background fsync failure can never be
				// followed by a successfully-acked transaction. The log is
				// dead; stop ticking.
				return
			}
		case <-l.syncStop:
			return
		}
	}
}

// Err reports the sticky failure, nil while the log is healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// NextLSN reports the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Close syncs and closes the active segment and stops the background
// syncer. Appending after Close fails.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.syncStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Committers parked in WaitDurable must not sleep through the close:
	// wake them so they observe l.closed (or the advanced durable horizon
	// from the final sync below) and return.
	defer l.groupWake.Broadcast()
	if l.seg == nil {
		return nil
	}
	var firstErr error
	if l.failed == nil {
		if err := l.seg.Sync(); err != nil {
			firstErr = err
		} else {
			l.stats.Syncs++
			l.advanceDurable(l.nextLSN - 1)
		}
	}
	if err := l.seg.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	l.seg = nil
	return firstErr
}

// WriteCheckpoint rotates to a fresh segment, writes a checkpoint covering
// every record appended so far (the build callback streams the database
// image through a CheckpointWriter), then prunes fully-covered segments
// and all but the newest KeepCheckpoints checkpoint files. A failure while
// writing the checkpoint leaves the log fully usable: the previous
// checkpoint and the unpruned segments still recover everything.
func (l *Log) WriteCheckpoint(build func(*CheckpointWriter) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrLogFailed, l.failed)
	}
	if l.closed {
		return errors.New("wal: log is closed")
	}
	lsn := l.nextLSN - 1 // everything through here is in the image
	if l.segSize > 0 {
		if err := l.rotate(); err != nil {
			l.failed = err
			return err
		}
	}
	path := filepath.Join(l.dir, ckptName(lsn))
	epochs := append([]EpochMark(nil), l.marks...)
	if err := writeCheckpoint(l.fs, path, lsn, epochs, build); err != nil {
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	l.prune(lsn)
	return nil
}

// prune removes segments fully covered by the checkpoint at lsn and all
// but the newest KeepCheckpoints checkpoints. Segments holding records a
// stream reader still needs survive regardless: the effective horizon is
// capped just below the minimum pinned LSN, so a lagging follower's resume
// point is never deleted out from under it. Pruning is best-effort:
// leftovers cost disk, not correctness, so errors are not fatal. Callers
// hold l.mu.
func (l *Log) prune(lsn uint64) {
	if min, ok := l.minPinnedLSN(); ok {
		if min == 0 {
			return // a zero pin retains the whole log
		}
		if min-1 < lsn {
			lsn = min - 1
		}
	}
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return
	}
	var segStarts, ckptLSNs []uint64
	for _, name := range names {
		if n, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segStarts = append(segStarts, n)
		}
		if n, ok := parseSeq(name, ckptPrefix, ckptSuffix); ok {
			ckptLSNs = append(ckptLSNs, n)
		}
	}
	sort.Slice(segStarts, func(i, j int) bool { return segStarts[i] < segStarts[j] })
	sort.Slice(ckptLSNs, func(i, j int) bool { return ckptLSNs[i] < ckptLSNs[j] })
	// A segment is removable when the next segment starts at or before
	// lsn+1 (so every record it holds is <= lsn). The active segment is
	// never removable: it starts at lsn+1 or later... except when it is
	// also where appends go, so skip it by name.
	for i, start := range segStarts {
		if i == len(segStarts)-1 {
			break
		}
		if segStarts[i+1] <= lsn+1 {
			name := filepath.Join(l.dir, segName(start))
			if name != l.segName {
				_ = l.fs.Remove(name) // best effort
			}
		}
	}
	for i, n := range ckptLSNs {
		if len(ckptLSNs)-i > l.opts.KeepCheckpoints {
			_ = l.fs.Remove(filepath.Join(l.dir, ckptName(n))) // best effort
		}
	}
	_ = l.fs.SyncDir(l.dir) // best effort
}
