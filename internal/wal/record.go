// Record framing and payload schemas for the write-ahead log.
//
// Every record — in log segments and in checkpoint files alike — uses the
// same envelope (all integers big-endian):
//
//	+--------------+--------------+------+-----------+-------------------+
//	| length (u32) |  crc32 (u32) | kind | LSN (u64) | payload (length-9)|
//	+--------------+--------------+------+-----------+-------------------+
//
// length covers kind+LSN+payload; the CRC (Castagnoli) covers the same
// bytes, so a torn or bit-flipped tail is detected before any payload is
// decoded. Payloads are JSON: the log is a low-rate, high-value stream
// (one record per committed transaction), so we trade compactness for
// debuggability — a segment can be inspected with od and jq.
//
// The durable unit is the paper's composed net transition effect [I, D, U]
// of a committed operation block (Definition 2.1), not the statements that
// produced it: rule selection among unordered rules is explicitly arbitrary
// (Section 4), so replaying statements could legally diverge from the
// pre-crash execution, while replaying net effects cannot.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Record kinds.
const (
	// KindCommit carries the net [I, D, U] effect of one committed
	// transaction (external block plus all rule-generated transitions).
	KindCommit byte = 1
	// KindDDL carries one definition statement (CREATE TABLE, CREATE RULE,
	// DROP INDEX, ...) as SQL text. DDL executes between transactions and
	// never triggers rules, so text replay is deterministic.
	KindDDL byte = 2

	// Checkpoint-file record kinds.
	KindCkptMeta  byte = 3 // CkptMeta: counters and schema script
	KindCkptRows  byte = 4 // CkptRows: one batch of tuples with handles
	KindCkptRules byte = 5 // CkptRules: rule definitions script
	KindCkptEnd   byte = 6 // empty: marks the checkpoint complete

	// KindEpoch opens a promotion epoch (EpochRecord, see epoch.go). It has
	// no database effect; its LSN is the epoch's boundary in the stream.
	KindEpoch byte = 7
)

// recHeaderSize is the fixed envelope prefix: u32 length + u32 crc.
const recHeaderSize = 8

// recBodyPrefix is kind byte + u64 LSN, the framed part before the payload.
const recBodyPrefix = 9

// maxRecordSize bounds a single record so that a corrupt length prefix
// cannot force an arbitrary allocation during recovery.
const maxRecordSize = 256 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Cell is one tuple value with an explicit kind tag, mirroring the wire
// protocol's encoding: "" (SQL NULL), "i" (int64), "f" (float64), "s"
// (string), "b" (bool). JSON alone cannot round-trip the engine's
// int64/float64 distinction, and recovery must land on a byte-identical
// state.
type Cell struct {
	Kind string  `json:"k,omitempty"`
	Int  int64   `json:"i,omitempty"`
	Flt  float64 `json:"f,omitempty"`
	Str  string  `json:"s,omitempty"`
	Bool bool    `json:"b,omitempty"`
}

// CellOf encodes one engine value (nil, int64, float64, string, bool).
func CellOf(v any) (Cell, error) {
	switch x := v.(type) {
	case nil:
		return Cell{}, nil
	case int64:
		return Cell{Kind: "i", Int: x}, nil
	case float64:
		return Cell{Kind: "f", Flt: x}, nil
	case string:
		return Cell{Kind: "s", Str: x}, nil
	case bool:
		return Cell{Kind: "b", Bool: x}, nil
	default:
		return Cell{}, fmt.Errorf("wal: cannot encode cell of type %T", v)
	}
}

// Value decodes the cell back to the engine's representation.
func (c Cell) Value() (any, error) {
	switch c.Kind {
	case "":
		return nil, nil
	case "i":
		return c.Int, nil
	case "f":
		return c.Flt, nil
	case "s":
		return c.Str, nil
	case "b":
		return c.Bool, nil
	default:
		return nil, fmt.Errorf("wal: unknown cell kind %q", c.Kind)
	}
}

// TupleRec is one tuple: its system handle and its full row.
type TupleRec struct {
	Handle uint64 `json:"h"`
	Row    []Cell `json:"r"`
}

// TableEffect is the net effect of a committed transaction on one table:
// inserted tuples (with their final values), deleted handles, and updated
// tuples (with their final values — replay overwrites the whole row). The
// three sets are disjoint by Definition 2.1.
type TableEffect struct {
	Table string     `json:"t"`
	Ins   []TupleRec `json:"ins,omitempty"`
	Del   []uint64   `json:"del,omitempty"`
	Upd   []TupleRec `json:"upd,omitempty"`
}

// CommitRecord is the durable image of one committed transaction.
// LastHandle is the storage handle counter after the transaction, so that
// recovery resumes handle allocation exactly where the crashed process
// stopped (handles are never reused, Section 2).
type CommitRecord struct {
	LastHandle uint64        `json:"last_handle"`
	Tables     []TableEffect `json:"tables,omitempty"`
}

// DDLRecord is one definition statement, replayed as text.
type DDLRecord struct {
	Stmt string `json:"stmt"`
}

// CkptMeta opens a checkpoint file: the handle counter, the last LSN whose
// effects the checkpoint includes, and the schema script (CREATE TABLE and
// CREATE INDEX statements, produced by the dump machinery).
type CkptMeta struct {
	LastHandle uint64 `json:"last_handle"`
	LSN        uint64 `json:"lsn"`
	Schema     string `json:"schema"`
	// Epochs is the full promotion-epoch table at checkpoint time, so a
	// node bootstrapped from this image can still place every historical
	// epoch boundary (epoch.go) after the records themselves are pruned.
	Epochs []EpochMark `json:"epochs,omitempty"`
}

// CkptRows is one batch of a table's tuples, handles included.
type CkptRows struct {
	Table  string     `json:"t"`
	Tuples []TupleRec `json:"rows"`
}

// CkptRules carries the rule-definition script (CREATE RULE statements,
// priorities, deactivations — again from the dump machinery).
type CkptRules struct {
	SQL string `json:"sql"`
}

// Record is one decoded log record.
type Record struct {
	LSN    uint64
	Kind   byte
	Commit *CommitRecord // set for KindCommit
	DDL    *DDLRecord    // set for KindDDL
	Epoch  *EpochRecord  // set for KindEpoch
}

// encodeFrame frames one record: envelope, kind, LSN, payload.
func encodeFrame(kind byte, lsn uint64, payload []byte) []byte {
	body := make([]byte, recBodyPrefix+len(payload))
	body[0] = kind
	binary.BigEndian.PutUint64(body[1:recBodyPrefix], lsn)
	copy(body[recBodyPrefix:], payload)
	frame := make([]byte, recHeaderSize+len(body))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
	copy(frame[recHeaderSize:], body)
	return frame
}

// rawRecord is one framed record located in a byte buffer.
type rawRecord struct {
	kind    byte
	lsn     uint64
	payload []byte
}

// scanFrames walks the framed records in data. It returns the records that
// are fully present and checksum-clean, plus the byte offset where the
// valid prefix ends. Anything after validLen — a torn tail from a crash
// mid-write, or a corrupted record — is for the caller to truncate. A
// record that is invalid makes everything after it unreachable (framing
// has no resynchronization points, by design: the log's only legal failure
// mode is a torn tail).
func scanFrames(data []byte) (recs []rawRecord, validLen int) {
	off := 0
	for {
		if off+recHeaderSize > len(data) {
			return recs, off
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if n < recBodyPrefix || n > maxRecordSize || off+recHeaderSize+n > len(data) {
			return recs, off
		}
		crc := binary.BigEndian.Uint32(data[off+4 : off+8])
		body := data[off+recHeaderSize : off+recHeaderSize+n]
		if crc32.Checksum(body, crcTable) != crc {
			return recs, off
		}
		recs = append(recs, rawRecord{
			kind:    body[0],
			lsn:     binary.BigEndian.Uint64(body[1:recBodyPrefix]),
			payload: body[recBodyPrefix:],
		})
		off += recHeaderSize + n
	}
}

// decodeRecord unmarshals one raw log record's payload.
func decodeRecord(raw rawRecord) (Record, error) {
	rec := Record{LSN: raw.lsn, Kind: raw.kind}
	switch raw.kind {
	case KindCommit:
		rec.Commit = &CommitRecord{}
		if err := json.Unmarshal(raw.payload, rec.Commit); err != nil {
			return rec, fmt.Errorf("wal: decode commit record lsn %d: %w", raw.lsn, err)
		}
	case KindDDL:
		rec.DDL = &DDLRecord{}
		if err := json.Unmarshal(raw.payload, rec.DDL); err != nil {
			return rec, fmt.Errorf("wal: decode ddl record lsn %d: %w", raw.lsn, err)
		}
	case KindEpoch:
		rec.Epoch = &EpochRecord{}
		if err := json.Unmarshal(raw.payload, rec.Epoch); err != nil {
			return rec, fmt.Errorf("wal: decode epoch record lsn %d: %w", raw.lsn, err)
		}
	default:
		return rec, fmt.Errorf("wal: unexpected record kind %d at lsn %d in log segment", raw.kind, raw.lsn)
	}
	return rec, nil
}

// marshalPayload JSON-encodes a record payload.
func marshalPayload(v any) ([]byte, error) {
	p, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wal: encode %T: %w", v, err)
	}
	return p, nil
}

// unmarshalJSON decodes a record payload.
func unmarshalJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("decode %T: %w", v, err)
	}
	return nil
}
