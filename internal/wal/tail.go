// Log tailing: the read side of WAL-shipping replication. A primary's
// stream sessions read committed records back out of the segment files
// (ReadRaw), wait for new appends (Appended), and pin a retention horizon
// (Pin) so that checkpoint pruning cannot delete segments a lagging
// follower still needs. Checkpoint images double as replica bootstrap
// state: NewestCheckpointRaw returns the newest loadable image as raw
// framed parts that can be shipped over the wire untouched and reassembled
// with AssembleCheckpoint on the other side.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ErrCompacted reports that the requested LSN is older than the oldest
// surviving log segment: the records were pruned against a checkpoint. A
// stream reader that hits it must re-bootstrap from a checkpoint image.
var ErrCompacted = errors.New("wal: requested lsn was pruned; bootstrap from a checkpoint")

// RawRecord is one framed log record as stored: its LSN, kind byte, and
// still-encoded JSON payload. Replication ships RawRecords verbatim — the
// bytes that recovery would replay are exactly the bytes a follower
// applies — and Decode turns one back into a structured Record.
type RawRecord struct {
	LSN     uint64
	Kind    byte
	Payload []byte
}

// Decode unmarshals the raw payload into a structured Record.
func (r RawRecord) Decode() (Record, error) {
	return decodeRecord(rawRecord{kind: r.Kind, lsn: r.LSN, payload: r.Payload})
}

// Pin holds a retention horizon on the log: prune keeps every record with
// LSN >= the pinned value, no matter what checkpoints cover. A stream
// session pins the next LSN its follower needs and advances the pin as
// acknowledgements arrive; Release drops the horizon when the follower
// disconnects.
type Pin struct {
	l *Log
}

// NewPin registers a retention horizon at lsn (the first LSN that must
// survive pruning). Pin with lsn 0 retains everything.
func (l *Log) NewPin(lsn uint64) *Pin {
	p := &Pin{l: l}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pins == nil {
		l.pins = make(map[*Pin]uint64)
	}
	l.pins[p] = lsn
	return p
}

// Advance moves the pin's horizon forward (a retreating advance is
// ignored: retention never needs to grow backwards).
func (p *Pin) Advance(lsn uint64) {
	p.l.mu.Lock()
	defer p.l.mu.Unlock()
	if cur, ok := p.l.pins[p]; ok && lsn > cur {
		p.l.pins[p] = lsn
	}
}

// Release drops the pin; the next checkpoint may prune past it.
func (p *Pin) Release() {
	p.l.mu.Lock()
	defer p.l.mu.Unlock()
	delete(p.l.pins, p)
}

// minPinnedLSN reports the lowest pinned horizon, or 0 when nothing is
// pinned. Callers hold l.mu.
func (l *Log) minPinnedLSN() (uint64, bool) {
	var min uint64
	found := false
	for _, lsn := range l.pins {
		if !found || lsn < min {
			min, found = lsn, true
		}
	}
	return min, found
}

// Appended returns a channel that is closed by the next successful append.
// A tailing reader checks NextLSN, reads what exists, and parks on this
// channel; spurious wakeups are fine (the reader re-checks).
func (l *Log) Appended() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.appendCh == nil {
		l.appendCh = make(chan struct{})
	}
	return l.appendCh
}

// signalAppend wakes Appended waiters. Callers hold l.mu.
func (l *Log) signalAppend() {
	if l.appendCh != nil {
		close(l.appendCh)
		l.appendCh = nil
	}
}

// OldestLSN reports the first LSN still present in log segments. With no
// segments at all it equals NextLSN (nothing is available, nothing was
// lost either).
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	next := l.nextLSN
	l.mu.Unlock()
	starts, err := l.segmentStarts()
	if err != nil || len(starts) == 0 {
		return next
	}
	return starts[0]
}

// segmentStarts lists the on-disk segment first-LSNs in ascending order.
func (l *Log) segmentStarts() ([]uint64, error) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var starts []uint64
	for _, name := range names {
		if n, ok := parseSeq(name, segPrefix, segSuffix); ok {
			starts = append(starts, n)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// ReadRaw returns committed records starting at LSN from, in order,
// stopping once maxBytes of payload have been collected (at least one
// record is returned when any is available). An empty result means from is
// past the end of the log — the caller waits on Appended. ErrCompacted
// (wrapped) means from predates the oldest surviving segment.
//
// ReadRaw is safe concurrently with appends: it snapshots NextLSN first
// and never returns a record at or beyond that point, and every returned
// record was fully written (and CRC-verified) before the snapshot was
// taken. Callers that must not race pruning hold a Pin at or below from.
func (l *Log) ReadRaw(from uint64, maxBytes int) ([]RawRecord, error) {
	if from == 0 {
		return nil, fmt.Errorf("wal: read from lsn 0 (lsns start at 1)")
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	l.mu.Lock()
	limit := l.nextLSN // exclusive: records >= limit may still be in flight
	l.mu.Unlock()
	if from >= limit {
		return nil, nil
	}
	starts, err := l.segmentStarts()
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	if len(starts) == 0 || from < starts[0] {
		return nil, fmt.Errorf("%w: lsn %d", ErrCompacted, from)
	}
	// First segment that can contain from: the last start <= from.
	i := sort.Search(len(starts), func(i int) bool { return starts[i] > from }) - 1
	var out []RawRecord
	total := 0
	for ; i < len(starts); i++ {
		data, err := readAll(l.fs, filepath.Join(l.dir, segName(starts[i])))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// Pruned between ReadDir and Open; only possible below any
				// pin, so the caller re-bootstraps.
				return nil, fmt.Errorf("%w: lsn %d", ErrCompacted, from)
			}
			return nil, fmt.Errorf("wal: read segment: %w", err)
		}
		recs, _ := scanFrames(data) // a torn tail here is an in-flight append
		for j, r := range recs {
			if want := starts[i] + uint64(j); r.lsn != want {
				return nil, fmt.Errorf("wal: segment %s record %d has lsn %d, want %d",
					segName(starts[i]), j, r.lsn, want)
			}
			if r.lsn < from {
				continue
			}
			if r.lsn >= limit {
				return out, nil
			}
			out = append(out, RawRecord{LSN: r.lsn, Kind: r.kind, Payload: r.payload})
			total += len(r.payload)
			if total >= maxBytes {
				return out, nil
			}
		}
	}
	return out, nil
}

// CkptPart is one framed section of a checkpoint image: its record kind
// (KindCkptMeta, KindCkptRows, KindCkptRules, KindCkptEnd) and encoded
// payload. Replication ships a checkpoint as its parts, verbatim.
type CkptPart struct {
	Kind    byte
	Payload []byte
}

// NewestCheckpointRaw returns the newest loadable checkpoint image as raw
// parts plus the LSN it covers. ok is false when no loadable checkpoint
// exists. Unreadable newer checkpoints are skipped exactly as Open skips
// them.
func (l *Log) NewestCheckpointRaw() (parts []CkptPart, lsn uint64, ok bool, err error) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: list dir: %w", err)
	}
	var ckptLSNs []uint64
	for _, name := range names {
		if n, ok := parseSeq(name, ckptPrefix, ckptSuffix); ok {
			ckptLSNs = append(ckptLSNs, n)
		}
	}
	sort.Slice(ckptLSNs, func(i, j int) bool { return ckptLSNs[i] < ckptLSNs[j] })
	for i := len(ckptLSNs) - 1; i >= 0; i-- {
		path := filepath.Join(l.dir, ckptName(ckptLSNs[i]))
		parts, err := readCheckpointParts(l.fs, path)
		if err != nil {
			continue // same fallback policy as Open
		}
		// Validate the parts assemble before shipping them anywhere.
		ck, err := AssembleCheckpoint(parts)
		if err != nil {
			continue
		}
		return parts, ck.Meta.LSN, true, nil
	}
	return nil, 0, false, nil
}
