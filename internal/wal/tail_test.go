// Tests for the tailing API replication sits on: ReadRaw windows, append
// notification, retention pins versus checkpoint pruning (a lagging
// stream reader must never lose segments it still needs), and raw
// checkpoint parts round-tripping through AssembleCheckpoint.
package wal

import (
	"errors"
	"testing"
	"time"
)

func TestReadRawWindow(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways, SegmentSize: 2})
	defer l.Close()
	appendN(t, l, 5)

	if _, err := l.ReadRaw(0, 0); err == nil {
		t.Fatal("ReadRaw(0) accepted; lsns start at 1")
	}
	recs, err := l.ReadRaw(1, 0)
	if err != nil {
		t.Fatalf("ReadRaw(1): %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.LSN)
		}
		rec, err := r.Decode()
		if err != nil {
			t.Fatalf("decode lsn %d: %v", r.LSN, err)
		}
		if rec.Commit == nil || rec.Commit.LastHandle != uint64(10+i) {
			t.Fatalf("lsn %d decoded to %+v", r.LSN, rec)
		}
	}

	// Mid-log start, spanning a segment boundary.
	recs, err = l.ReadRaw(3, 0)
	if err != nil || len(recs) != 3 || recs[0].LSN != 3 {
		t.Fatalf("ReadRaw(3) = %d recs (first %v), err %v", len(recs), recs, err)
	}
	// Past the end: empty, no error — the caller parks on Appended.
	recs, err = l.ReadRaw(6, 0)
	if err != nil || recs != nil {
		t.Fatalf("ReadRaw(6) = %v, %v; want nil, nil", recs, err)
	}
	// A tiny byte budget still returns at least one record.
	recs, err = l.ReadRaw(1, 1)
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadRaw(1, 1 byte) = %d recs, err %v", len(recs), err)
	}
}

func TestAppendedWakesTail(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways})
	defer l.Close()
	ch := l.Appended()
	errc := make(chan error, 1)
	go func() { errc <- l.AppendCommit(commitRec(0)) }()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("Appended channel never closed after an append")
	}
	if err := <-errc; err != nil {
		t.Fatalf("AppendCommit: %v", err)
	}
	if recs, err := l.ReadRaw(1, 0); err != nil || len(recs) != 1 {
		t.Fatalf("after wake: %d recs, err %v", len(recs), err)
	}
}

// TestPinBlocksPruning is the retention-horizon contract: a checkpoint
// may only prune up to the minimum pinned LSN, so a lagging stream
// session (pin = next LSN its follower needs) never loses records, and
// releasing the pin lets the next checkpoint reclaim them.
func TestPinBlocksPruning(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways, SegmentSize: 1})
	defer l.Close()
	appendN(t, l, 4)

	pin := l.NewPin(2) // a follower still needs LSN 2
	if err := l.WriteCheckpoint(buildTestCheckpoint(1)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if got := l.OldestLSN(); got > 2 {
		t.Fatalf("OldestLSN = %d after pinned checkpoint, want <= 2", got)
	}
	recs, err := l.ReadRaw(2, 0)
	if err != nil || len(recs) != 3 || recs[0].LSN != 2 {
		t.Fatalf("pinned read: %d recs (err %v), want lsns 2..4", len(recs), err)
	}

	// The follower caught up to 3: records before it become reclaimable.
	pin.Advance(4)
	if err := l.WriteCheckpoint(buildTestCheckpoint(2)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if _, err := l.ReadRaw(2, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadRaw(2) after advance = %v, want ErrCompacted", err)
	}
	if recs, err := l.ReadRaw(4, 0); err != nil || len(recs) != 1 {
		t.Fatalf("ReadRaw(4) under advanced pin: %d recs, err %v", len(recs), err)
	}

	// Advance ignores retreat attempts.
	pin.Advance(1)
	if recs, err := l.ReadRaw(4, 0); err != nil || len(recs) != 1 {
		t.Fatalf("ReadRaw(4) after bogus retreat: %d recs, err %v", len(recs), err)
	}

	// Released: the next checkpoint prunes everything it covers.
	pin.Release()
	if err := l.WriteCheckpoint(buildTestCheckpoint(3)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if _, err := l.ReadRaw(4, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadRaw(4) after release = %v, want ErrCompacted", err)
	}
}

func TestZeroPinRetainsEverything(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways, SegmentSize: 1})
	defer l.Close()
	appendN(t, l, 3)
	pin := l.NewPin(0) // a fresh follower that has applied nothing
	defer pin.Release()
	if err := l.WriteCheckpoint(buildTestCheckpoint(1)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	recs, err := l.ReadRaw(1, 0)
	if err != nil || len(recs) != 3 {
		t.Fatalf("zero pin: %d recs, err %v; want all 3", len(recs), err)
	}
}

func TestNewestCheckpointRaw(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways})
	defer l.Close()

	if _, _, ok, err := l.NewestCheckpointRaw(); ok || err != nil {
		t.Fatalf("empty log: ok=%v err=%v, want no checkpoint", ok, err)
	}

	appendN(t, l, 3)
	if err := l.WriteCheckpoint(buildTestCheckpoint(77)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	parts, lsn, ok, err := l.NewestCheckpointRaw()
	if err != nil || !ok {
		t.Fatalf("NewestCheckpointRaw: ok=%v err=%v", ok, err)
	}
	if lsn != 3 {
		t.Fatalf("checkpoint lsn = %d, want 3", lsn)
	}
	// The raw parts reassemble to the image recovery would load.
	ck, err := AssembleCheckpoint(parts)
	if err != nil {
		t.Fatalf("AssembleCheckpoint: %v", err)
	}
	if ck.Meta.LSN != 3 || ck.Meta.LastHandle != 77 || len(ck.Tables) != 1 {
		t.Fatalf("assembled checkpoint = %+v", ck)
	}
}

func TestAssembleCheckpointRejectsMangledParts(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways})
	defer l.Close()
	appendN(t, l, 1)
	if err := l.WriteCheckpoint(buildTestCheckpoint(1)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	parts, _, _, err := l.NewestCheckpointRaw()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]CkptPart{
		"empty":          {},
		"no end":         parts[:len(parts)-1],
		"no meta":        parts[1:],
		"meta not first": {parts[1], parts[0], parts[2], parts[3]},
		"trailing junk":  append(append([]CkptPart{}, parts...), CkptPart{Kind: KindCkptRows}),
		"bad kind":       {{Kind: 99}},
		"bad payload":    {{Kind: KindCkptMeta, Payload: []byte("{")}},
	}
	for name, mangled := range cases {
		if _, err := AssembleCheckpoint(mangled); err == nil {
			t.Errorf("%s: mangled parts assembled without error", name)
		}
	}
}
