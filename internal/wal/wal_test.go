// Tests for the log itself: append/recover round trips, the torn-write
// corpus (truncation at every byte offset), bit-flip corruption, segment
// rotation, checkpoints with pruning and fallback, and the FaultFS
// failpoints. The engine-level crash-recovery property test lives in the
// root package; here the unit is the log.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

const testDir = "data"

func openTest(t *testing.T, fs FS, opts Options) (*Log, *Recovery) {
	t.Helper()
	opts.FS = fs
	l, rec, err := Open(testDir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

// commitRec builds a small, distinguishable commit record for LSN-ish id i.
func commitRec(i int) *CommitRecord {
	return &CommitRecord{
		LastHandle: uint64(10 + i),
		Tables: []TableEffect{{
			Table: "t",
			Ins:   []TupleRec{{Handle: uint64(10 + i), Row: []Cell{{Kind: "i", Int: int64(i)}, {Kind: "s", Str: fmt.Sprintf("row-%d", i)}}}},
		}},
	}
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := l.AppendCommit(commitRec(i)); err != nil {
			t.Fatalf("AppendCommit %d: %v", i, err)
		}
	}
}

// writeRaw drops raw bytes at path through fs, synced.
func writeRaw(t *testing.T, fs FS, path string, data []byte) {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func mustReadAll(t *testing.T, fs FS, path string) []byte {
	t.Helper()
	data, err := readAll(fs, path)
	if err != nil {
		t.Fatalf("readAll %s: %v", path, err)
	}
	return data
}

// frameEnds walks the frame layout (length-prefixed) independently of
// scanFrames' CRC logic and returns the byte offset where each complete
// frame ends. Used to compute the expected longest-valid-prefix for a
// truncated log without trusting the code under test.
func frameEnds(data []byte) []int {
	var ends []int
	off := 0
	for off+recHeaderSize <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if off+recHeaderSize+n > len(data) {
			break
		}
		off += recHeaderSize + n
		ends = append(ends, off)
	}
	return ends
}

func TestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, rec := openTest(t, fs, Options{Policy: SyncAlways})
	if rec.Checkpoint != nil || len(rec.Records) != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fresh dir recovery not empty: %+v", rec)
	}
	appendN(t, l, 3)
	if err := l.AppendDDL("create table t (a int)"); err != nil {
		t.Fatalf("AppendDDL: %v", err)
	}
	if got := l.NextLSN(); got != 5 {
		t.Fatalf("NextLSN = %d, want 5", got)
	}
	st := l.Stats()
	if st.Appends != 4 || st.Bytes == 0 || st.Syncs < 4 {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.AppendDDL("x"); err == nil {
		t.Fatal("append after Close succeeded")
	}

	l2, rec2 := openTest(t, fs, Options{Policy: SyncAlways})
	defer l2.Close()
	if len(rec2.Records) != 4 {
		t.Fatalf("recovered %d records, want 4", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	for i := 0; i < 3; i++ {
		r := rec2.Records[i]
		if r.Kind != KindCommit || r.Commit == nil {
			t.Fatalf("record %d is not a commit: %+v", i, r)
		}
		if r.Commit.LastHandle != uint64(10+i) || len(r.Commit.Tables) != 1 || r.Commit.Tables[0].Table != "t" {
			t.Fatalf("record %d decoded wrong: %+v", i, r.Commit)
		}
		row := r.Commit.Tables[0].Ins[0].Row
		if v, _ := row[0].Value(); v != int64(i) {
			t.Fatalf("record %d cell 0 = %v", i, v)
		}
		if v, _ := row[1].Value(); v != fmt.Sprintf("row-%d", i) {
			t.Fatalf("record %d cell 1 = %v", i, v)
		}
	}
	if r := rec2.Records[3]; r.Kind != KindDDL || r.DDL == nil || r.DDL.Stmt != "create table t (a int)" {
		t.Fatalf("DDL record decoded wrong: %+v", rec2.Records[3])
	}
	if got := l2.NextLSN(); got != 5 {
		t.Fatalf("NextLSN after reopen = %d, want 5", got)
	}
}

// TestTornTailCorpus is the ISSUE's torn-write corpus: a valid log
// truncated at EVERY byte offset must recover exactly the records whose
// frames are fully contained in the prefix, truncate the tear, never
// panic, and accept new appends afterwards.
func TestTornTailCorpus(t *testing.T) {
	src := NewMemFS()
	l, _ := openTest(t, src, Options{Policy: SyncAlways})
	appendN(t, l, 5)
	if err := l.AppendDDL("create table u (b string)"); err != nil {
		t.Fatalf("AppendDDL: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(testDir, segName(1))
	data := mustReadAll(t, src, segPath)
	ends := frameEnds(data)
	if len(ends) != 6 || ends[len(ends)-1] != len(data) {
		t.Fatalf("bad corpus: %d frames, last end %d, file %d bytes", len(ends), ends[len(ends)-1], len(data))
	}

	for k := 0; k <= len(data); k++ {
		want := 0
		valid := 0
		for _, e := range ends {
			if e <= k {
				want++
				valid = e
			}
		}
		fs := NewMemFS()
		if err := fs.MkdirAll(testDir); err != nil {
			t.Fatal(err)
		}
		writeRaw(t, fs, segPath, data[:k])
		l2, rec, err := Open(testDir, Options{FS: fs, Policy: SyncAlways})
		if err != nil {
			t.Fatalf("offset %d: Open: %v", k, err)
		}
		if len(rec.Records) != want {
			t.Fatalf("offset %d: recovered %d records, want %d", k, len(rec.Records), want)
		}
		if rec.TruncatedBytes != int64(k-valid) {
			t.Fatalf("offset %d: TruncatedBytes = %d, want %d", k, rec.TruncatedBytes, k-valid)
		}
		for i, r := range rec.Records {
			if r.LSN != uint64(i+1) {
				t.Fatalf("offset %d: record %d has LSN %d", k, i, r.LSN)
			}
		}
		if size, err := fs.Size(segPath); err != nil || size != int64(valid) {
			t.Fatalf("offset %d: tear not truncated: size=%d err=%v, want %d", k, size, err, valid)
		}
		// The log must keep working after recovery from a tear.
		if err := l2.AppendCommit(commitRec(99)); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", k, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", k, err)
		}
		_, rec3, err := Open(testDir, Options{FS: fs, Policy: SyncAlways})
		if err != nil {
			t.Fatalf("offset %d: reopen: %v", k, err)
		}
		if len(rec3.Records) != want+1 {
			t.Fatalf("offset %d: after re-append recovered %d, want %d", k, len(rec3.Records), want+1)
		}
	}
}

// TestBitFlipCorpus flips every byte of a valid single-segment log in
// turn; recovery must stop cleanly before the corrupted frame (CRC or
// framing catches it) and never panic or return records out of order.
func TestBitFlipCorpus(t *testing.T) {
	src := NewMemFS()
	l, _ := openTest(t, src, Options{Policy: SyncAlways})
	appendN(t, l, 4)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(testDir, segName(1))
	data := mustReadAll(t, src, segPath)
	ends := frameEnds(data)

	for i := 0; i < len(data); i++ {
		// The frame containing byte i is the first one to die.
		wantMax := 0
		for _, e := range ends {
			if e <= i {
				wantMax++
			}
		}
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		fs := NewMemFS()
		if err := fs.MkdirAll(testDir); err != nil {
			t.Fatal(err)
		}
		writeRaw(t, fs, segPath, mut)
		_, rec, err := Open(testDir, Options{FS: fs, Policy: SyncAlways})
		if err != nil {
			// A length-field flip can masquerade as a giant or undersized
			// record; any failure must be an error, never a panic. But a
			// checksum-caught flip is a tear, which recovers silently.
			continue
		}
		if len(rec.Records) > wantMax {
			t.Fatalf("byte %d: flip yielded %d records, frame boundary says max %d", i, len(rec.Records), wantMax)
		}
		for j, r := range rec.Records {
			if r.LSN != uint64(j+1) {
				t.Fatalf("byte %d: record %d has LSN %d", i, j, r.LSN)
			}
		}
	}
}

func TestMidStreamCorruptionRefused(t *testing.T) {
	fs := NewMemFS()
	// Tiny segments: every record rotates into its own file.
	l, _ := openTest(t, fs, Options{Policy: SyncAlways, SegmentSize: 1})
	appendN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt the first segment: the hole is NOT at the tail of the log.
	segPath := filepath.Join(testDir, segName(1))
	data := mustReadAll(t, fs, segPath)
	data[len(data)/2] ^= 0xff
	writeRaw(t, fs, segPath, data)
	_, _, err := Open(testDir, Options{FS: fs, Policy: SyncAlways})
	if err == nil || !strings.Contains(err.Error(), "not the final segment") {
		t.Fatalf("mid-stream corruption: err = %v, want refusal", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways, SegmentSize: 1})
	appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := fs.ReadDir(testDir)
	if err != nil {
		t.Fatal(err)
	}
	segCount := 0
	for _, n := range names {
		if _, ok := parseSeq(n, segPrefix, segSuffix); ok {
			segCount++
		}
	}
	if segCount < 3 {
		t.Fatalf("only %d segments after 5 appends at SegmentSize=1", segCount)
	}
	l2, rec := openTest(t, fs, Options{Policy: SyncAlways, SegmentSize: 1})
	defer l2.Close()
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records across segments, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	if got := l2.NextLSN(); got != 6 {
		t.Fatalf("NextLSN = %d, want 6", got)
	}
}

func buildTestCheckpoint(lastHandle uint64) func(*CheckpointWriter) error {
	return func(cw *CheckpointWriter) error {
		if err := cw.Meta(lastHandle, "create table t (a int);\n"); err != nil {
			return err
		}
		if err := cw.Rows("t", []TupleRec{{Handle: 1, Row: []Cell{{Kind: "i", Int: 42}}}}); err != nil {
			return err
		}
		return cw.Rules("create rule r when inserted into t then delete from t where a < 0 end;\n")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways})
	appendN(t, l, 3)
	if err := l.WriteCheckpoint(buildTestCheckpoint(77)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l, 2) // LSNs 4, 5 land after the checkpoint
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := openTest(t, fs, Options{Policy: SyncAlways})
	defer l2.Close()
	ck := rec.Checkpoint
	if ck == nil {
		t.Fatal("no checkpoint recovered")
	}
	if ck.Meta.LSN != 3 || ck.Meta.LastHandle != 77 {
		t.Fatalf("checkpoint meta = %+v", ck.Meta)
	}
	if !strings.Contains(ck.Meta.Schema, "create table t") {
		t.Fatalf("checkpoint schema = %q", ck.Meta.Schema)
	}
	if len(ck.Tables) != 1 || ck.Tables[0].Table != "t" || len(ck.Tables[0].Tuples) != 1 {
		t.Fatalf("checkpoint tables = %+v", ck.Tables)
	}
	if !strings.Contains(ck.Rules, "create rule r") {
		t.Fatalf("checkpoint rules = %q", ck.Rules)
	}
	if len(rec.Records) != 2 || rec.Records[0].LSN != 4 || rec.Records[1].LSN != 5 {
		t.Fatalf("tail after checkpoint = %+v", rec.Records)
	}
	if got := l2.NextLSN(); got != 6 {
		t.Fatalf("NextLSN = %d, want 6", got)
	}
}

func TestCheckpointPrunes(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways, SegmentSize: 1})
	for i := 0; i < 3; i++ {
		appendN(t, l, 4)
		if err := l.WriteCheckpoint(buildTestCheckpoint(uint64(i))); err != nil {
			t.Fatalf("WriteCheckpoint %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := fs.ReadDir(testDir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts, segs []string
	for _, n := range names {
		if _, ok := parseSeq(n, ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, n)
		}
		if _, ok := parseSeq(n, segPrefix, segSuffix); ok {
			segs = append(segs, n)
		}
	}
	if len(ckpts) != 2 { // default KeepCheckpoints
		t.Fatalf("%d checkpoint files survive, want 2: %v", len(ckpts), ckpts)
	}
	// 12 records went through; all segments fully covered by the newest
	// checkpoint are gone, leaving only the (empty) active one.
	if len(segs) != 1 {
		t.Fatalf("%d segments survive pruning, want 1: %v", len(segs), segs)
	}
	_, rec := openTest(t, fs, Options{Policy: SyncAlways, SegmentSize: 1})
	if rec.Checkpoint == nil || rec.Checkpoint.Meta.LSN != 12 || len(rec.Records) != 0 {
		t.Fatalf("recovery after prune = ckpt %+v, %d records", rec.Checkpoint, len(rec.Records))
	}
}

// TestCheckpointFallback: an unreadable newest checkpoint whose records
// still exist in segments falls back to the older checkpoint plus the
// longer log tail — no data loss, and the skip is reported.
func TestCheckpointFallback(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways})
	appendN(t, l, 3)
	if err := l.WriteCheckpoint(buildTestCheckpoint(7)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l, 2) // LSNs 4, 5 survive in a segment
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Plant a garbage "newer" checkpoint claiming to cover through LSN 5.
	writeRaw(t, fs, filepath.Join(testDir, ckptName(5)), []byte("not a checkpoint"))

	l2, rec := openTest(t, fs, Options{Policy: SyncAlways})
	defer l2.Close()
	if len(rec.SkippedCheckpoints) != 1 || !strings.Contains(rec.SkippedCheckpoints[0], ckptName(5)) {
		t.Fatalf("SkippedCheckpoints = %v", rec.SkippedCheckpoints)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Meta.LSN != 3 {
		t.Fatalf("fallback checkpoint = %+v", rec.Checkpoint)
	}
	if len(rec.Records) != 2 || rec.Records[0].LSN != 4 {
		t.Fatalf("tail after fallback = %+v", rec.Records)
	}
}

// TestCheckpointCorruptAfterPruneRefuses: when the newest checkpoint is
// unreadable AND the records it covered were already pruned, recovery
// must refuse to serve rather than silently resurrect the older state.
func TestCheckpointCorruptAfterPruneRefuses(t *testing.T) {
	fs := NewMemFS()
	l, _ := openTest(t, fs, Options{Policy: SyncAlways})
	appendN(t, l, 3)
	if err := l.WriteCheckpoint(buildTestCheckpoint(1)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l, 2)
	if err := l.WriteCheckpoint(buildTestCheckpoint(2)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Both checkpoints survive (KeepCheckpoints=2) but the segment holding
	// LSNs 4-5 was pruned against the newest. Corrupt the newest.
	writeRaw(t, fs, filepath.Join(testDir, ckptName(5)), []byte("garbage"))
	_, _, err := Open(testDir, Options{FS: fs, Policy: SyncAlways})
	if err == nil || !strings.Contains(err.Error(), "pruned") {
		t.Fatalf("err = %v, want refusal over pruned records", err)
	}
}

func TestFailWriteSticky(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, _ := openTest(t, ffs, Options{Policy: SyncAlways})
	ffs.FailWriteN = 2 // the first append's write is #1
	if err := l.AppendCommit(commitRec(0)); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	err := l.AppendCommit(commitRec(1))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("append 2: err = %v, want injected fault", err)
	}
	// The log is poisoned: later appends fail with ErrLogFailed even
	// though the write would succeed, so a tear can never become a hole.
	if err := l.AppendCommit(commitRec(2)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append 3: err = %v, want ErrLogFailed", err)
	}
	if err := l.Err(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err() = %v", err)
	}
	l.Close() //nolint:errcheck // the log already failed

	_, rec := openTest(t, mem, Options{Policy: SyncAlways})
	if len(rec.Records) != 1 || rec.Records[0].LSN != 1 {
		t.Fatalf("recovered %+v, want exactly record 1", rec.Records)
	}
}

func TestShortWriteTornTail(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, _ := openTest(t, ffs, Options{Policy: SyncAlways})
	ffs.ShortWriteN = 3 // first two appends land, the third is torn mid-frame
	appendN(t, l, 2)
	if err := l.AppendCommit(commitRec(2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append: err = %v", err)
	}
	l.Close() //nolint:errcheck // the log already failed

	l2, rec := openTest(t, mem, Options{Policy: SyncAlways})
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("short write left no torn bytes to truncate")
	}
	if err := l2.AppendCommit(commitRec(3)); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	if got := l2.NextLSN(); got != 4 {
		t.Fatalf("NextLSN = %d, want 4", got)
	}
}

func TestCrashAtByte(t *testing.T) {
	// Frame size is constant for a fixed payload shape, so place the crash
	// 10 bytes into the third record's frame.
	frame := encodeFrame(KindCommit, 1, mustMarshal(t, commitRec(0)))
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, _ := openTest(t, ffs, Options{Policy: SyncAlways})
	ffs.CrashAtByte = int64(2*len(frame) + 10)

	n := 0
	var lastErr error
	for i := 0; i < 5; i++ {
		if lastErr = l.AppendCommit(commitRec(0)); lastErr != nil {
			break
		}
		n++
	}
	if n != 2 || !errors.Is(lastErr, ErrInjected) {
		t.Fatalf("crashed after %d appends (err %v), want 2", n, lastErr)
	}
	if !ffs.Crashed() {
		t.Fatal("FaultFS not crashed")
	}
	if err := l.AppendCommit(commitRec(9)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after crash: %v", err)
	}

	// The machine never comes back within this process: simulate the OS
	// losing everything unsynced, then a fresh process recovering.
	mem.DropUnsynced()
	_, rec, err := Open(testDir, Options{FS: mem, Policy: SyncAlways})
	if err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records after crash, want the 2 synced ones", len(rec.Records))
	}
}

func TestFailSyncAmbiguity(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, _ := openTest(t, ffs, Options{Policy: SyncAlways})
	// Open consumed one sync (the directory sync when creating the first
	// segment); the next append's fsync is #2.
	ffs.FailSyncN = 2
	if err := l.AppendCommit(commitRec(0)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append with failing fsync: %v", err)
	}
	if err := l.AppendCommit(commitRec(1)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after failed fsync: %v", err)
	}
	// The record was written but not synced: it may or may not survive.
	// Either way recovery must be clean and appends must continue from a
	// consistent LSN.
	l2, rec := openTest(t, mem, Options{Policy: SyncAlways})
	if len(rec.Records) > 1 {
		t.Fatalf("recovered %d records, wrote at most 1", len(rec.Records))
	}
	next := l2.NextLSN()
	if want := uint64(len(rec.Records)) + 1; next != want {
		t.Fatalf("NextLSN = %d, want %d", next, want)
	}
	if err := l2.AppendCommit(commitRec(1)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestSyncNeverLosesUnsynced(t *testing.T) {
	mem := NewMemFS()
	l, _ := openTest(t, mem, Options{Policy: SyncNever})
	appendN(t, l, 3)
	// No Close, no sync: the OS crashes and everything buffered is gone.
	mem.DropUnsynced()
	_, rec, err := Open(testDir, Options{FS: mem, Policy: SyncNever})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %d records that were never synced", len(rec.Records))
	}
}

func TestAtomicWriteFile(t *testing.T) {
	mem := NewMemFS()
	if err := mem.MkdirAll(testDir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(testDir, "dump.sql")
	put := func(fs FS, content string) error {
		return AtomicWriteFile(fs, path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
	}
	if err := put(mem, "old content"); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := put(mem, "new content"); err != nil {
		t.Fatalf("second write: %v", err)
	}
	if got := string(mustReadAll(t, mem, path)); got != "new content" {
		t.Fatalf("content = %q", got)
	}

	// A failing write callback leaves the old content and no temp file.
	err := AtomicWriteFile(mem, path, func(w io.Writer) error {
		io.WriteString(w, "partial") //nolint:errcheck // fault path
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("error from write callback not surfaced")
	}
	if got := string(mustReadAll(t, mem, path)); got != "new content" {
		t.Fatalf("content after failed rewrite = %q", got)
	}
	if _, err := mem.Size(path + ".tmp"); err == nil {
		t.Fatal("temp file left behind")
	}

	// A crash mid-write (every write fails from byte 3 on, renames too)
	// leaves the old content.
	ffs := NewFaultFS(mem)
	ffs.CrashAtByte = 3
	if err := put(ffs, "torn rewrite that never lands"); err == nil {
		t.Fatal("crashed write reported success")
	}
	if got := string(mustReadAll(t, mem, path)); got != "new content" {
		t.Fatalf("content after crashed rewrite = %q", got)
	}
}

func TestMemFSDropUnsynced(t *testing.T) {
	mem := NewMemFS()
	if err := mem.MkdirAll(testDir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(testDir, "f")
	f, err := mem.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" volatile")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mem.DropUnsynced()
	if got := string(mustReadAll(t, mem, path)); got != "durable" {
		t.Fatalf("after crash content = %q, want only the synced prefix", got)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	p, err := marshalPayload(v)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
