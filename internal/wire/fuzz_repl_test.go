package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// FuzzReadStreamFrame drives the follower's stream-decode path (ReadFrame
// + DecodeReplStream) with arbitrary bytes: torn frames, truncated JSON,
// oversize declared lengths, wrong frame types, and mangled valid frames.
// Whatever arrives, the decoder must fail cleanly — no panic, no
// over-allocation — and anything it accepts must satisfy the stream
// invariants a follower relies on (a record always carries a payload).
func FuzzReadStreamFrame(f *testing.F) {
	seed := func(typ byte, v any) []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, typ, v, ReplMaxFrame); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	// Valid frames of each stream type seed the corpus, plus a
	// payload-less record (torn), an upstream type that must be rejected,
	// an oversize declared length, and raw junk.
	f.Add(seed(MsgReplRecord, &ReplRecord{LSN: 1, Kind: 1, Payload: json.RawMessage(`{"h":1}`)}))
	f.Add(seed(MsgReplSnapFrame, &ReplSnapFrame{Kind: 3, Payload: json.RawMessage(`{}`)}))
	f.Add(seed(MsgReplHeartbeat, &ReplHeartbeat{LSN: 7}))
	f.Add(seed(MsgError, &ErrorResponse{Code: CodeDiverged, Message: "x"}))
	f.Add(seed(MsgReplRecord, &ReplRecord{LSN: 2, Kind: 1}))
	f.Add(seed(MsgReplAck, &ReplAck{LSN: 3}))
	f.Add([]byte{MsgReplRecord, 0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{MsgReplHeartbeat, 0x00})
	f.Add([]byte{})

	const max = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, payload, err := ReadFrame(r, max)
		if err != nil {
			// Framing errors must be classified, never a panic; the classes
			// themselves are pinned by FuzzReadFrame.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("unexpected framing error class: %v", err)
			}
			return
		}
		msg, err := DecodeReplStream(typ, payload)
		if err != nil {
			return // rejected cleanly: a follower drops the session and rejoins
		}
		switch m := msg.(type) {
		case *ReplRecord:
			if len(m.Payload) == 0 {
				t.Fatal("accepted record with empty payload (a torn record must be rejected)")
			}
			// An accepted record must re-frame and re-decode identically:
			// the bytes a follower acks are the bytes it applied.
			var buf bytes.Buffer
			if err := WriteMessage(&buf, MsgReplRecord, m, max); err != nil {
				t.Fatalf("re-encode accepted record: %v", err)
			}
			typ2, payload2, err := ReadFrame(&buf, max)
			if err != nil || typ2 != MsgReplRecord {
				t.Fatalf("re-read accepted record: typ %#x, err %v", typ2, err)
			}
			m2, err := DecodeReplStream(typ2, payload2)
			if err != nil {
				t.Fatalf("re-decode accepted record: %v", err)
			}
			r2 := m2.(*ReplRecord)
			if r2.LSN != m.LSN || r2.Kind != m.Kind || !bytes.Equal(r2.Payload, m.Payload) {
				t.Fatal("record changed across re-encode round trip")
			}
		case *ReplSnapFrame, *ReplHeartbeat, *ErrorResponse:
			// Valid stream frames; nothing further to hold them to here.
		default:
			t.Fatalf("DecodeReplStream returned unexpected type %T", msg)
		}
	})
}
