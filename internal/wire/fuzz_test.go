package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader. Whatever the
// input, ReadFrame must return without panicking or over-allocating, must
// classify truncation correctly (io.EOF only at a frame boundary, never
// mid-frame), and anything it accepts must survive a write/read round
// trip bit-identically.
func FuzzReadFrame(f *testing.F) {
	// A valid small frame, a truncated header, an oversized declared
	// length, and an empty input seed the corpus.
	var valid bytes.Buffer
	_ = WriteFrame(&valid, MsgExec, []byte(`{"src":"select 1"}`), 0)
	f.Add(valid.Bytes())
	f.Add([]byte{MsgPing, 0x00})
	f.Add([]byte{MsgError, 0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{})

	const max = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, payload, err := ReadFrame(r, max)
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				if len(data) != 0 {
					t.Fatalf("io.EOF with %d unread header bytes; want ErrUnexpectedEOF mid-frame", len(data))
				}
			case errors.Is(err, io.ErrUnexpectedEOF):
				if len(data) == 0 {
					t.Fatal("ErrUnexpectedEOF on empty input; want io.EOF")
				}
			case errors.Is(err, ErrFrameTooLarge):
				// The declared length must actually exceed max, and the
				// payload must not have been consumed.
				if len(data) < headerSize {
					t.Fatalf("ErrFrameTooLarge on %d-byte input, shorter than a header", len(data))
				}
				declared := uint32(data[1])<<24 | uint32(data[2])<<16 | uint32(data[3])<<8 | uint32(data[4])
				if declared <= max {
					t.Fatalf("ErrFrameTooLarge for declared length %d <= max %d", declared, max)
				}
				if r.Len() != len(data)-headerSize {
					t.Fatalf("oversized frame consumed payload bytes: %d left, want %d", r.Len(), len(data)-headerSize)
				}
			default:
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if len(payload) > max {
			t.Fatalf("accepted %d-byte payload beyond max %d", len(payload), max)
		}
		// Round trip: re-encode and read back bit-identically.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload, max); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		typ2, payload2, err := ReadFrame(&buf, max)
		if err != nil {
			t.Fatalf("re-read of accepted frame failed: %v", err)
		}
		if typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatal("frame changed across write/read round trip")
		}
	})
}
