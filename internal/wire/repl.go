// Replication messages: the WAL-shipping stream between a primary soprd
// and its read replicas, carried over the same length-prefixed frame
// transport as the request/response protocol.
//
// The role handshake is one request/response pair: a follower sends
// MsgReplJoin with the LSN it has applied; the primary answers with either
// a checkpoint bootstrap (MsgReplSnap frames, when the follower's resume
// point was pruned) or goes straight to the continuous stream. From then
// on the session is a long-lived duplex stream: the primary pushes
// MsgReplRecord frames in strict LSN order and MsgReplHeartbeat frames
// when idle, while the follower pushes MsgReplAck frames upstream so the
// primary can pin WAL retention at the slowest connected follower and
// report lag.
//
// Record and snapshot payloads carry the WAL's own JSON encodings verbatim
// (json.RawMessage): the bytes a follower applies are exactly the bytes
// crash recovery would replay, so replication inherits recovery's
// determinism argument — net effects replayed with rules disabled cannot
// diverge (paper Definition 2.1, Section 4).
package wire

import (
	"encoding/json"
	"fmt"
)

// Replication message types. Requests/upstream frames have the high bit
// clear, primary->follower stream frames have it set.
const (
	MsgReplJoin    byte = 0x10 // ReplJoinRequest: follower joins the stream
	MsgReplAck     byte = 0x11 // ReplAck: follower reports its applied LSN
	MsgReplPromote byte = 0x12 // ReplPromoteRequest (or empty): promote a replica
	MsgReplFollow  byte = 0x13 // ReplFollowRequest: follow this leader at this epoch

	MsgReplSnapFrame byte = 0x90 // ReplSnapFrame: one checkpoint-bootstrap part
	MsgReplRecord    byte = 0x91 // ReplRecord: one WAL record
	MsgReplHeartbeat byte = 0x92 // ReplHeartbeat: primary liveness + current LSN
	MsgReplPromoted  byte = 0x93 // ReplPromotedResponse: promotion acknowledged
	MsgReplFollowed  byte = 0x94 // ReplFollowedResponse: re-point/demotion acknowledged
)

// Replication error codes carried by ErrorResponse.
const (
	// CodeReadOnly rejects a write on a replica: writes go to the primary.
	CodeReadOnly = "read_only"
	// CodeNotPrimary rejects a stream join on a server that cannot serve
	// replication (no write-ahead log, or itself a replica).
	CodeNotPrimary = "not_primary"
	// CodeLagging rejects a read whose MinLSN the replica could not reach
	// within the server's wait bound; the client should retry elsewhere.
	CodeLagging = "lagging"
	// CodeDiverged rejects a join whose resume LSN is ahead of the
	// primary's log — or past the boundary of an epoch the follower never
	// saw — the follower holds state this primary's history never wrote,
	// so streaming could not converge; it must reset and rebootstrap.
	CodeDiverged = "diverged"
	// CodeFenced rejects a write or a stream join on a node that has
	// observed a higher promotion epoch than its own: the cluster moved on
	// and this node's writes can no longer be part of the single ordered
	// stream. The ErrorResponse carries the fencing epoch.
	CodeFenced = "fenced"
	// CodeStaleEpoch rejects a request carrying an epoch older than the
	// serving node's: the client's view of the cluster is out of date and
	// it should re-probe. The ErrorResponse carries the node's epoch.
	CodeStaleEpoch = "stale_epoch"
)

// ReplMaxFrame is the frame-size cap for stream sessions. Stream frames
// carry whole WAL records and checkpoint row batches, which can exceed the
// request/response DefaultMaxFrame; both ends of a stream use this larger
// cap after the join handshake.
const ReplMaxFrame = 64 << 20

// ReplJoinRequest asks the primary to stream the WAL. FromLSN is the last
// LSN the follower has applied (0 for a fresh replica): the stream resumes
// at FromLSN+1, or bootstraps from a checkpoint when that point is pruned.
// Epoch is the promotion epoch of the follower's local history — the epoch
// the record at FromLSN belongs to, not merely the highest epoch it has
// heard of. The source uses the pair to decide exactly whether the
// follower's history forked from its own (diverged) or whether the source
// itself is the stale party (fenced).
type ReplJoinRequest struct {
	FromLSN uint64 `json:"from_lsn"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// ReplPromoteRequest asks a replica to become the primary of a new epoch.
// Epoch is the epoch the promoting client wants opened (its cluster-wide
// view + 1); the node opens max(Epoch, its own highest seen + 1) so epochs
// never move backwards. An empty-payload MsgReplPromote means Epoch 0.
type ReplPromoteRequest struct {
	Epoch uint64 `json:"epoch,omitempty"`
}

// ReplPromotedResponse acknowledges a promotion: the epoch actually opened
// and the node's LSN at promotion time.
type ReplPromotedResponse struct {
	Epoch uint64 `json:"epoch"`
	LSN   uint64 `json:"lsn,omitempty"`
}

// ReplFollowRequest tells a node who leads the given epoch. On a replica
// it re-points the stream at Leader; on a primary with an older epoch it
// is a demotion order: step down, truncate any unshipped suffix, and
// rejoin the cluster as Leader's follower.
type ReplFollowRequest struct {
	Leader string `json:"leader"`
	Epoch  uint64 `json:"epoch"`
}

// ReplFollowedResponse acknowledges a follow/demotion order.
type ReplFollowedResponse struct {
	Epoch uint64 `json:"epoch"`
}

// ReplSnapFrame is one part of a checkpoint bootstrap: the WAL checkpoint
// record kind (wal.KindCkptMeta, KindCkptRows, KindCkptRules, KindCkptEnd)
// and its payload, verbatim. The frame with the end-marker kind completes
// the snapshot; records follow.
type ReplSnapFrame struct {
	Kind    byte            `json:"k"`
	Payload json.RawMessage `json:"p,omitempty"`
}

// ReplRecord is one WAL record in flight: LSN, record kind (wal.KindCommit
// or wal.KindDDL), and the record's JSON payload verbatim. Records arrive
// in strictly consecutive LSN order; a gap or repeat means the stream is
// broken and the follower must rejoin.
type ReplRecord struct {
	LSN     uint64          `json:"lsn"`
	Kind    byte            `json:"k"`
	Payload json.RawMessage `json:"p"`
	// Epoch is the source's current epoch when the frame was sent. A
	// follower that has seen a newer epoch treats a lower value as a
	// stream from a stale (fenced) source and disconnects.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ReplHeartbeat is sent by an idle primary: LSN is its last durable LSN,
// so a caught-up follower can report zero lag and a lagging one can
// measure its distance even when nothing new arrives for it. Epoch is the
// source's current epoch, like ReplRecord's.
type ReplHeartbeat struct {
	LSN   uint64 `json:"lsn"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// ReplAck reports the follower's applied LSN upstream. The primary pins
// WAL retention at the minimum acknowledged LSN across connected
// followers, uses it for lag accounting, and — in synchronous-commit
// mode — releases commits waiting on this LSN. Epoch is the highest epoch
// the follower has observed: an ack carrying a higher epoch than the
// source's own fences the source.
type ReplAck struct {
	LSN   uint64 `json:"lsn"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// ReplStats describes a node's replication state, carried inside
// StatsResponse.
type ReplStats struct {
	// Role is "primary" or "replica".
	Role string `json:"role"`
	// LSN is the node's own position: last durable LSN on a primary,
	// applied LSN on a replica.
	LSN uint64 `json:"lsn"`
	// PrimaryLSN is the replica's last view of the primary's LSN (from
	// records and heartbeats); zero on a primary.
	PrimaryLSN uint64 `json:"primary_lsn,omitempty"`
	// Lag is PrimaryLSN - LSN on a replica (records known but not yet
	// applied); zero on a primary.
	Lag int64 `json:"lag,omitempty"`
	// Connected reports whether the replica's stream to the primary is
	// currently up.
	Connected bool `json:"connected,omitempty"`
	// Promoted reports that this node began as a replica and was promoted
	// to accept writes.
	Promoted bool `json:"promoted,omitempty"`
	// Followers is the number of connected stream sessions on a primary.
	Followers int `json:"followers,omitempty"`
	// MinFollowerLSN is the lowest acknowledged LSN across connected
	// followers on a primary (the WAL retention horizon); zero with no
	// followers.
	MinFollowerLSN uint64 `json:"min_follower_lsn,omitempty"`
	// Epoch is the node's current promotion epoch: its own log's epoch on
	// a primary, the highest observed epoch on a replica. 0 until the
	// first promotion anywhere in the cluster.
	Epoch uint64 `json:"epoch,omitempty"`
	// Durable reports that the node persists its state in its own WAL (a
	// durable primary, or a -follow -data replica) and can therefore serve
	// as a replication source after promotion.
	Durable bool `json:"durable,omitempty"`
	// Fenced reports that the node observed a higher epoch than its own
	// and is refusing writes until it is demoted into the new leader's
	// follower.
	Fenced bool `json:"fenced,omitempty"`
	// Leader is the upstream address a replica streams from.
	Leader string `json:"leader,omitempty"`
	// SyncFollowers is the configured number of follower acks a commit
	// waits for (0 = asynchronous replication).
	SyncFollowers int `json:"sync_followers,omitempty"`
	// SyncTimeouts counts commits that waited the full synchronous-commit
	// timeout and degraded to an async ack.
	SyncTimeouts int64 `json:"sync_timeouts,omitempty"`
	// Resets counts reset-and-rebootstrap cycles on a replica (stream gap,
	// decode/apply failure, or divergence).
	Resets int64 `json:"resets,omitempty"`
	// DiscardedRecords counts locally-held records a replica dropped on
	// divergence resets — the loud report of any unshipped suffix a
	// returning primary had to truncate.
	DiscardedRecords int64 `json:"discarded_records,omitempty"`
}

// DecodeReplStream decodes one primary->follower stream frame (snapshot
// part, record, heartbeat) into its typed struct. It is the follower's
// single entry point for stream frames, and the fuzz target for torn,
// truncated, or hostile streams: any unknown type or undecodable payload
// is an error, never a panic.
func DecodeReplStream(typ byte, payload []byte) (any, error) {
	switch typ {
	case MsgReplSnapFrame:
		var f ReplSnapFrame
		if err := Unmarshal(payload, &f); err != nil {
			return nil, err
		}
		return &f, nil
	case MsgReplRecord:
		var r ReplRecord
		if err := Unmarshal(payload, &r); err != nil {
			return nil, err
		}
		if len(r.Payload) == 0 {
			return nil, fmt.Errorf("wire: repl record lsn %d has no payload", r.LSN)
		}
		return &r, nil
	case MsgReplHeartbeat:
		var h ReplHeartbeat
		if err := Unmarshal(payload, &h); err != nil {
			return nil, err
		}
		return &h, nil
	case MsgError:
		var er ErrorResponse
		if err := Unmarshal(payload, &er); err != nil {
			return nil, err
		}
		return &er, nil
	default:
		return nil, fmt.Errorf("wire: unexpected %s frame in replication stream", TypeName(typ))
	}
}
