package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestReplRoundTrip frames each replication message through WriteMessage/
// ReadFrame/DecodeReplStream (stream frames) or Unmarshal (upstream
// frames) and checks the payload survives intact.
func TestReplRoundTrip(t *testing.T) {
	t.Run("record", func(t *testing.T) {
		in := &ReplRecord{LSN: 42, Kind: 1, Payload: json.RawMessage(`{"h":7}`)}
		out := streamTrip(t, MsgReplRecord, in)
		r, ok := out.(*ReplRecord)
		if !ok || r.LSN != 42 || r.Kind != 1 || !bytes.Equal(r.Payload, in.Payload) {
			t.Fatalf("round trip = %#v", out)
		}
	})
	t.Run("snap frame", func(t *testing.T) {
		in := &ReplSnapFrame{Kind: 3, Payload: json.RawMessage(`{"schema":"create table t (a int);"}`)}
		out := streamTrip(t, MsgReplSnapFrame, in)
		s, ok := out.(*ReplSnapFrame)
		if !ok || s.Kind != 3 || !bytes.Equal(s.Payload, in.Payload) {
			t.Fatalf("round trip = %#v", out)
		}
	})
	t.Run("heartbeat", func(t *testing.T) {
		out := streamTrip(t, MsgReplHeartbeat, &ReplHeartbeat{LSN: 9})
		h, ok := out.(*ReplHeartbeat)
		if !ok || h.LSN != 9 {
			t.Fatalf("round trip = %#v", out)
		}
	})
	t.Run("error", func(t *testing.T) {
		out := streamTrip(t, MsgError, &ErrorResponse{Code: CodeDiverged, Message: "boom"})
		e, ok := out.(*ErrorResponse)
		if !ok || e.Code != CodeDiverged || e.Message != "boom" {
			t.Fatalf("round trip = %#v", out)
		}
	})
	t.Run("join and ack", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, MsgReplJoin, &ReplJoinRequest{FromLSN: 11}, ReplMaxFrame); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := ReadFrame(&buf, ReplMaxFrame)
		if err != nil || typ != MsgReplJoin {
			t.Fatalf("ReadFrame = %v, %v", typ, err)
		}
		var join ReplJoinRequest
		if err := Unmarshal(payload, &join); err != nil || join.FromLSN != 11 {
			t.Fatalf("join = %+v, err %v", join, err)
		}
		buf.Reset()
		if err := WriteMessage(&buf, MsgReplAck, &ReplAck{LSN: 12}, ReplMaxFrame); err != nil {
			t.Fatal(err)
		}
		typ, payload, err = ReadFrame(&buf, ReplMaxFrame)
		if err != nil || typ != MsgReplAck {
			t.Fatalf("ReadFrame = %v, %v", typ, err)
		}
		var ack ReplAck
		if err := Unmarshal(payload, &ack); err != nil || ack.LSN != 12 {
			t.Fatalf("ack = %+v, err %v", ack, err)
		}
	})
}

func streamTrip(t *testing.T, typ byte, v any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, typ, v, ReplMaxFrame); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	gotTyp, payload, err := ReadFrame(&buf, ReplMaxFrame)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if gotTyp != typ {
		t.Fatalf("type = %#x, want %#x", gotTyp, typ)
	}
	out, err := DecodeReplStream(gotTyp, payload)
	if err != nil {
		t.Fatalf("DecodeReplStream: %v", err)
	}
	return out
}

// TestDecodeReplStreamRejects pins the decoder's refusals: request-cycle
// frame types never appear in a stream, and a record without a payload is
// torn, not empty.
func TestDecodeReplStreamRejects(t *testing.T) {
	for _, typ := range []byte{MsgExec, MsgQuery, MsgPong, MsgReplJoin, MsgReplAck, 0xEE} {
		if _, err := DecodeReplStream(typ, []byte(`{}`)); err == nil {
			t.Errorf("type %#x accepted in stream", typ)
		}
	}
	if _, err := DecodeReplStream(MsgReplRecord, []byte(`{"lsn":5,"k":1}`)); err == nil {
		t.Error("record without payload accepted")
	}
	if _, err := DecodeReplStream(MsgReplRecord, []byte(`{"lsn":`)); err == nil {
		t.Error("truncated record JSON accepted")
	}
}

func TestReplStatsInStatsResponse(t *testing.T) {
	in := StatsResponse{Repl: &ReplStats{Role: "replica", LSN: 5, PrimaryLSN: 9, Lag: 4, Connected: true}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out StatsResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Repl == nil || *out.Repl != *in.Repl {
		t.Fatalf("repl stats round trip = %+v", out.Repl)
	}
	// Absent on non-replicated servers: the field must stay omitted so old
	// clients see byte-identical stats responses.
	data, err = json.Marshal(StatsResponse{})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("repl")) {
		t.Fatalf("empty StatsResponse leaks repl field: %s", data)
	}
}
