// Package wire defines the client/server protocol of the soprd network
// front-end: length-prefixed frames carrying JSON-encoded request and
// response messages. The engine itself processes a single stream of
// operation blocks (paper Section 2.1); the protocol's job is only to move
// scripts and results between processes, so it favors simplicity and
// robustness over compactness.
//
// Frame layout (network byte order):
//
//	+------+----------------+------------------+
//	| type |  length (u32)  | payload (length) |
//	+------+----------------+------------------+
//
// The type byte identifies the message; the payload is the JSON encoding
// of the corresponding Go struct (empty for Ping/Pong). Frames larger than
// the negotiated maximum are rejected before the payload is read, so a
// malicious or broken peer cannot force an arbitrary allocation.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Message types. Requests have the high bit clear, responses have it set;
// MsgError may answer any request.
const (
	MsgExec      byte = 0x01 // ExecRequest: run a script (DDL, rules, operation blocks)
	MsgQuery     byte = 0x02 // QueryRequest: evaluate one SELECT
	MsgDump      byte = 0x03 // no payload: request a recreate script
	MsgStats     byte = 0x04 // no payload: request engine + server counters
	MsgPing      byte = 0x05 // no payload: liveness probe
	MsgExecBatch byte = 0x06 // ExecBatchRequest: run N statements as one operation block

	MsgExecResult      byte = 0x81 // ExecResponse
	MsgQueryResult     byte = 0x82 // Rows
	MsgDumpResult      byte = 0x83 // DumpResponse
	MsgStatsResult     byte = 0x84 // StatsResponse
	MsgPong            byte = 0x85 // no payload
	MsgExecBatchResult byte = 0x86 // ExecResponse (same shape as MsgExecResult)
	MsgError           byte = 0xff // ErrorResponse
)

// DefaultMaxFrame is the frame-size guard used when a Server or Client is
// configured with zero: large enough for bulk inserts and dumps, small
// enough that a bogus length prefix cannot exhaust memory.
const DefaultMaxFrame = 8 << 20

// headerSize is the fixed frame header: type byte + u32 payload length.
const headerSize = 5

// ErrFrameTooLarge is returned when a frame (incoming or outgoing) exceeds
// the maximum size. An oversized incoming frame's payload is not consumed,
// but its declared length is known (see FrameSizeError), so a server can
// drain exactly that many bytes and keep the session; an oversized
// outgoing frame never touches the wire at all.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// FrameSizeError is the concrete error ReadFrame returns for an oversized
// incoming frame. It wraps ErrFrameTooLarge (errors.Is keeps working) and
// carries the declared payload length so the reader can discard exactly
// the unread payload and resynchronize on the next frame boundary.
type FrameSizeError struct {
	Declared int // payload length from the frame header
	Max      int // the limit it exceeded
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("wire: frame exceeds maximum size: %d > %d bytes", e.Declared, e.Max)
}

func (e *FrameSizeError) Unwrap() error { return ErrFrameTooLarge }

// Error codes carried by ErrorResponse.
const (
	CodeParse    = "parse"     // script failed to parse; Line is set
	CodeExec     = "exec"      // script parsed but execution failed
	CodeBadFrame = "bad_frame" // unknown message type or undecodable payload
	CodeTooLarge = "too_large" // request frame exceeded the maximum; session dropped
	CodeShutdown = "shutdown"  // server is draining; retry elsewhere
	CodeInternal = "internal"  // unexpected server-side failure
	// CodeFrameTooLarge reports an oversized request frame whose payload
	// the server drained: unlike CodeTooLarge, the session stays usable —
	// the client may shrink (or split) the request and resend on the same
	// connection.
	CodeFrameTooLarge = "frame_too_large"
)

// ExecRequest asks the server to execute a script as the next operation
// blocks in its single stream.
type ExecRequest struct {
	Src string `json:"src"`
	// Epoch, when nonzero, is the highest promotion epoch the client has
	// observed. A server at a lower epoch fences itself and refuses the
	// write; a server at a higher epoch answers stale_epoch so the client
	// re-probes. Zero claims nothing (pre-failover clients).
	Epoch uint64 `json:"epoch,omitempty"`
}

// ExecBatchRequest asks the server to execute a list of data-manipulation
// statements as ONE operation block: one engine pass, one commit record,
// one (shared) fsync — the set-oriented batching the paper's rule model
// makes natural, since rules already process net effects per transaction.
// Definitions (CREATE TABLE/RULE, DROP, CHECKPOINT) are rejected: they
// execute between transactions and cannot join a block.
type ExecBatchRequest struct {
	Stmts []string `json:"stmts"`
	// Epoch has ExecRequest.Epoch semantics.
	Epoch uint64 `json:"epoch,omitempty"`
}

// QueryRequest asks the server to evaluate a single SELECT outside any
// transaction. MinLSN, when nonzero, asks a replica to serve the query
// only once it has applied at least that LSN (read-your-writes: clients
// pass the LSN token returned by their last write); a replica that cannot
// catch up within its wait bound answers CodeLagging. Primaries are
// always current and ignore it.
type QueryRequest struct {
	Src    string `json:"src"`
	MinLSN uint64 `json:"min_lsn,omitempty"`
}

// Firing mirrors sopr.Firing across the wire.
type Firing struct {
	Rule   string `json:"rule"`
	Effect string `json:"effect"`
}

// Rows is a result set. Cells are typed explicitly because JSON alone
// cannot round-trip the engine's int64/float64 distinction.
type Rows struct {
	Columns []string `json:"columns"`
	Data    [][]Cell `json:"data"`
}

// ExecResponse mirrors sopr.Result across the wire.
type ExecResponse struct {
	RolledBack   bool     `json:"rolled_back,omitempty"`
	RollbackRule string   `json:"rollback_rule,omitempty"`
	Firings      []Firing `json:"firings,omitempty"`
	Results      []Rows   `json:"results,omitempty"`
	// LSN is the server's last durable LSN after the exec (zero on an
	// in-memory server). Clients use it as a read-your-writes token: a
	// later query with MinLSN = LSN on any replica observes this write.
	LSN uint64 `json:"lsn,omitempty"`
	// Epoch is the serving node's promotion epoch at exec time.
	Epoch uint64 `json:"epoch,omitempty"`
	// Synced reports that the commit was acknowledged by the configured
	// number of synchronous followers before this response was sent — the
	// write survives any single failover to one of them. False in async
	// mode and when the sync wait timed out (degraded ack).
	Synced bool `json:"synced,omitempty"`
}

// DumpResponse carries a SQL script recreating the database.
type DumpResponse struct {
	Script string `json:"script"`
}

// EngineStats mirrors sopr.Stats across the wire.
type EngineStats struct {
	Committed           int64 `json:"committed"`
	RolledBack          int64 `json:"rolled_back"`
	ExternalTransitions int64 `json:"external_transitions"`
	RuleConsiderations  int64 `json:"rule_considerations"`
	RuleFirings         int64 `json:"rule_firings"`
	IndexLookups        int64 `json:"index_lookups"`
	HeapScans           int64 `json:"heap_scans"`
	WALAppends          int64 `json:"wal_appends"`
	WALBytes            int64 `json:"wal_bytes"`
	RecoveredRecords    int64 `json:"recovered_records"`
	Checkpoints         int64 `json:"checkpoints"`
	GroupCommits        int64 `json:"group_commits,omitempty"`
	GroupedTxns         int64 `json:"grouped_txns,omitempty"`
	PlannedQueries      int64 `json:"planned_queries,omitempty"`
	PlanProbeFallbacks  int64 `json:"plan_probe_fallbacks,omitempty"`
}

// ServerStats are the network front-end's own counters, kept separately
// from the engine's rule-processing counters.
type ServerStats struct {
	Accepted    int64 `json:"accepted"`     // connections accepted
	Active      int64 `json:"active"`       // connections currently open
	Execs       int64 `json:"execs"`        // Exec requests served
	BatchExecs  int64 `json:"batch_execs"`  // ExecBatch requests served
	Queries     int64 `json:"queries"`      // Query requests served
	Dumps       int64 `json:"dumps"`        // Dump requests served
	StatsReqs   int64 `json:"stats_reqs"`   // Stats requests served
	Pings       int64 `json:"pings"`        // Ping requests served
	Errors      int64 `json:"errors"`       // error responses sent
	BadFrames   int64 `json:"bad_frames"`   // connections dropped on framing errors
	InFlight    int64 `json:"in_flight"`    // requests being processed right now
	DrainedReqs int64 `json:"drained_reqs"` // requests completed during shutdown drain
}

// StatsResponse bundles both counter sets, plus the node's replication
// state when it participates in replication (nil on a standalone server).
type StatsResponse struct {
	Engine EngineStats `json:"engine"`
	Server ServerStats `json:"server"`
	Repl   *ReplStats  `json:"repl,omitempty"`
}

// ErrorResponse reports a failed request with a structured code. Line is
// the 1-based line within the submitted script for CodeParse errors, 0
// otherwise.
type ErrorResponse struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Line    int    `json:"line,omitempty"`
	// Epoch qualifies fenced/stale_epoch errors: the epoch that fenced the
	// node (fenced) or the node's own current epoch (stale_epoch), so the
	// client can adopt it and re-probe without another round trip.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ---------------------------------------------------------------------------
// Typed cells
// ---------------------------------------------------------------------------

// Cell is one result-set value with an explicit kind tag: "" (SQL NULL),
// "i" (int64), "f" (float64), "s" (string), or "b" (bool).
type Cell struct {
	Kind string  `json:"k,omitempty"`
	Int  int64   `json:"i,omitempty"`
	Flt  float64 `json:"f,omitempty"`
	Str  string  `json:"s,omitempty"`
	Bool bool    `json:"b,omitempty"`
}

// CellOf encodes one engine cell value (nil, int64, float64, string or
// bool — the types sopr.Rows.Data produces).
func CellOf(v any) (Cell, error) {
	switch x := v.(type) {
	case nil:
		return Cell{}, nil
	case int64:
		return Cell{Kind: "i", Int: x}, nil
	case float64:
		return Cell{Kind: "f", Flt: x}, nil
	case string:
		return Cell{Kind: "s", Str: x}, nil
	case bool:
		return Cell{Kind: "b", Bool: x}, nil
	default:
		return Cell{}, fmt.Errorf("wire: cannot encode cell of type %T", v)
	}
}

// Value decodes the cell back to the engine's representation.
func (c Cell) Value() (any, error) {
	switch c.Kind {
	case "":
		return nil, nil
	case "i":
		return c.Int, nil
	case "f":
		return c.Flt, nil
	case "s":
		return c.Str, nil
	case "b":
		return c.Bool, nil
	default:
		return nil, fmt.Errorf("wire: unknown cell kind %q", c.Kind)
	}
}

// RowsOf encodes a column/data result set (the sopr.Rows layout).
func RowsOf(columns []string, data [][]any) (Rows, error) {
	out := Rows{Columns: columns}
	for _, row := range data {
		cells := make([]Cell, len(row))
		for i, v := range row {
			c, err := CellOf(v)
			if err != nil {
				return Rows{}, err
			}
			cells[i] = c
		}
		out.Data = append(out.Data, cells)
	}
	return out, nil
}

// Decode converts the wire rows back to columns + raw cell data.
func (r Rows) Decode() (columns []string, data [][]any, err error) {
	for _, row := range r.Data {
		vals := make([]any, len(row))
		for i, c := range row {
			if vals[i], err = c.Value(); err != nil {
				return nil, nil, err
			}
		}
		data = append(data, vals)
	}
	return r.Columns, data, nil
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

// WriteFrame writes one frame. max bounds the payload size (0 means
// DefaultMaxFrame); oversized writes fail before touching the wire so the
// stream stays consistent.
func WriteFrame(w io.Writer, typ byte, payload []byte, max int) error {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if len(payload) > max {
		return fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, len(payload), max)
	}
	buf := make([]byte, headerSize+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:headerSize], uint32(len(payload)))
	copy(buf[headerSize:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame. max bounds the accepted payload size (0 means
// DefaultMaxFrame). A declared length beyond max returns a *FrameSizeError
// (wrapping ErrFrameTooLarge) without consuming the payload — the caller
// may drain FrameSizeError.Declared bytes to resynchronize; a stream that
// ends mid-frame returns io.ErrUnexpectedEOF (io.EOF only at a clean frame
// boundary).
func ReadFrame(r io.Reader, max int) (typ byte, payload []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err // clean EOF allowed between frames
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > uint32(max) {
		return hdr[0], nil, &FrameSizeError{Declared: int(n), Max: max}
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// WriteMessage JSON-encodes v (nil for payload-less messages) and writes
// it as one frame.
func WriteMessage(w io.Writer, typ byte, v any, max int) error {
	var payload []byte
	if v != nil {
		var err error
		if payload, err = json.Marshal(v); err != nil {
			return fmt.Errorf("wire: encode %T: %w", v, err)
		}
	}
	return WriteFrame(w, typ, payload, max)
}

// Unmarshal decodes a frame payload into v.
func Unmarshal(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("wire: decode %T: %w", v, err)
	}
	return nil
}

// TypeName returns a human-readable name for a message type byte (for
// logs and error messages).
func TypeName(typ byte) string {
	switch typ {
	case MsgExec:
		return "exec"
	case MsgQuery:
		return "query"
	case MsgDump:
		return "dump"
	case MsgStats:
		return "stats"
	case MsgPing:
		return "ping"
	case MsgExecBatch:
		return "exec_batch"
	case MsgExecResult:
		return "exec_result"
	case MsgQueryResult:
		return "query_result"
	case MsgDumpResult:
		return "dump_result"
	case MsgStatsResult:
		return "stats_result"
	case MsgPong:
		return "pong"
	case MsgExecBatchResult:
		return "exec_batch_result"
	case MsgError:
		return "error"
	case MsgReplJoin:
		return "repl_join"
	case MsgReplAck:
		return "repl_ack"
	case MsgReplPromote:
		return "repl_promote"
	case MsgReplSnapFrame:
		return "repl_snap_frame"
	case MsgReplRecord:
		return "repl_record"
	case MsgReplHeartbeat:
		return "repl_heartbeat"
	case MsgReplPromoted:
		return "repl_promoted"
	case MsgReplFollow:
		return "repl_follow"
	case MsgReplFollowed:
		return "repl_followed"
	default:
		return fmt.Sprintf("0x%02x", typ)
	}
}
