package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// TestFrameRoundTripProperty writes pseudo-random frames of many sizes and
// types through a buffer and checks they read back bit-identically, frame
// boundaries intact.
func TestFrameRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var buf bytes.Buffer
	type frame struct {
		typ     byte
		payload []byte
	}
	var frames []frame
	sizes := []int{0, 1, 2, 7, 64, 1024, 65536, 1 << 18}
	for i := 0; i < 100; i++ {
		n := sizes[rng.Intn(len(sizes))]
		payload := make([]byte, n)
		rng.Read(payload)
		typ := byte(rng.Intn(256))
		frames = append(frames, frame{typ, payload})
		if err := WriteFrame(&buf, typ, payload, 0); err != nil {
			t.Fatalf("frame %d: write: %v", i, err)
		}
	}
	for i, f := range frames {
		typ, payload, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		if typ != f.typ {
			t.Fatalf("frame %d: type = 0x%02x, want 0x%02x", i, typ, f.typ)
		}
		if !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(payload), len(f.payload))
		}
	}
	if typ, _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("after last frame: type 0x%02x err %v, want io.EOF", typ, err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, MsgExec, []byte(`{"src":"select 1"}`), 0); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	// Every proper prefix except the empty one must yield ErrUnexpectedEOF;
	// the empty prefix is a clean EOF between frames.
	for cut := 1; cut < len(raw); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(raw[:cut]), 0)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrUnexpectedEOF", cut, len(raw), err)
		}
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	const max = 128
	// Writing oversized payloads fails before touching the stream.
	var buf bytes.Buffer
	err := WriteFrame(&buf, MsgExec, make([]byte, max+1), max)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write: err = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write left %d bytes on the stream", buf.Len())
	}
	// Reading a frame whose declared length exceeds max fails without
	// consuming the payload.
	if err := WriteFrame(&buf, MsgExec, make([]byte, max+1), 0); err != nil {
		t.Fatal(err)
	}
	before := buf.Len()
	_, _, err = ReadFrame(&buf, max)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read: err = %v, want ErrFrameTooLarge", err)
	}
	if got := before - buf.Len(); got != headerSize {
		t.Fatalf("oversized read consumed %d bytes, want only the %d-byte header", got, headerSize)
	}
	// A frame exactly at max passes.
	buf.Reset()
	if err := WriteFrame(&buf, MsgPing, make([]byte, max), max); err != nil {
		t.Fatalf("write at max: %v", err)
	}
	if _, payload, err := ReadFrame(&buf, max); err != nil || len(payload) != max {
		t.Fatalf("read at max: len %d err %v", len(payload), err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := ExecResponse{
		RolledBack:   true,
		RollbackRule: "guard",
		Firings:      []Firing{{Rule: "r", Effect: "[I:0 D:2 U:0 S:0]"}},
	}
	if err := WriteMessage(&buf, MsgExecResult, want, 0); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf, 0)
	if err != nil || typ != MsgExecResult {
		t.Fatalf("type 0x%02x err %v", typ, err)
	}
	var got ExecResponse
	if err := Unmarshal(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.RollbackRule != "guard" || !got.RolledBack || len(got.Firings) != 1 || got.Firings[0].Rule != "r" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestCellRoundTrip(t *testing.T) {
	cols := []string{"a", "b", "c", "d", "e"}
	data := [][]any{
		{nil, int64(-7), 3.25, "it's", true},
		{int64(1 << 62), 0.0, "", false, nil},
	}
	rows, err := RowsOf(cols, data)
	if err != nil {
		t.Fatal(err)
	}
	gotCols, gotData, err := rows.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(gotCols, ",") != strings.Join(cols, ",") {
		t.Fatalf("columns %v", gotCols)
	}
	for i := range data {
		for j := range data[i] {
			if gotData[i][j] != data[i][j] {
				t.Errorf("cell [%d][%d] = %#v, want %#v", i, j, gotData[i][j], data[i][j])
			}
		}
	}
	// int64 and float64 stay distinct through JSON.
	if _, ok := gotData[0][1].(int64); !ok {
		t.Errorf("int cell decoded as %T", gotData[0][1])
	}
	if _, ok := gotData[0][2].(float64); !ok {
		t.Errorf("float cell decoded as %T", gotData[0][2])
	}
	if _, err := CellOf(struct{}{}); err == nil {
		t.Error("CellOf accepted an unsupported type")
	}
	if _, err := (Cell{Kind: "z"}).Value(); err == nil {
		t.Error("Value accepted an unknown kind")
	}
}

func TestTypeName(t *testing.T) {
	for typ, want := range map[byte]string{
		MsgExec: "exec", MsgQuery: "query", MsgDump: "dump", MsgStats: "stats",
		MsgPing: "ping", MsgExecResult: "exec_result", MsgQueryResult: "query_result",
		MsgDumpResult: "dump_result", MsgStatsResult: "stats_result",
		MsgPong: "pong", MsgError: "error", 0x42: "0x42",
	} {
		if got := TypeName(typ); got != want {
			t.Errorf("TypeName(0x%02x) = %q, want %q", typ, got, want)
		}
	}
}
