package sopr

import (
	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
)

// Stmt is a prepared script: parsed once, executable many times. Rule
// processing is unaffected — each Exec of a prepared script runs the same
// transactions the textual form would.
type Stmt struct {
	db    *DB
	stmts []sqlast.Statement
}

// Prepare parses a script for repeated execution. Definition statements
// (CREATE TABLE / CREATE RULE / ...) are allowed but usually belong in a
// one-shot Exec; re-executing them fails with duplicate-definition errors.
func (db *DB) Prepare(src string) (*Stmt, error) {
	stmts, err := sqlparse.ParseStatements(src)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, stmts: stmts}, nil
}

// Exec runs the prepared script.
func (s *Stmt) Exec() (*Result, error) {
	txn, err := s.db.eng.ExecStatements(s.stmts)
	return wrapTxn(txn), err
}

// QueryRow is a convenience for a prepared single-SELECT script: it
// executes and returns the first (only) result set.
func (s *Stmt) Query() (*Rows, error) {
	res, err := s.Exec()
	if err != nil {
		return nil, err
	}
	if len(res.Results) == 0 {
		return nil, nil
	}
	return res.Results[0], nil
}
