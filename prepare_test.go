package sopr

import "testing"

func TestPreparedStatements(t *testing.T) {
	db := openPaperDB(t)
	db.MustExec(`
		create rule cascade when deleted from dept
		then delete from emp where dept_no in (select dept_no from deleted dept)
		end
	`)
	ins, err := db.Prepare(`insert into emp values ('x', 1, 10, 1); insert into dept values (1, 1)`)
	if err != nil {
		t.Fatal(err)
	}
	del, err := db.Prepare(`delete from dept`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := db.Prepare(`select count(*) from emp`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ins.Exec(); err != nil {
			t.Fatal(err)
		}
		res, err := del.Exec()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Firings) != 1 || res.Firings[0].Rule != "cascade" {
			t.Fatalf("iteration %d firings: %+v", i, res.Firings)
		}
		rows, err := q.Query()
		if err != nil {
			t.Fatal(err)
		}
		if rows.Data[0][0] != int64(0) {
			t.Fatalf("iteration %d: emp count %v", i, rows.Data[0][0])
		}
	}
	if _, err := db.Prepare(`not sql`); err == nil {
		t.Error("bad script prepared")
	}
	// Query on a prepared script with no result sets returns nil.
	noq, _ := db.Prepare(`insert into emp values ('y', 2, 10, null)`)
	rows, err := noq.Query()
	if err != nil || rows != nil {
		t.Errorf("no-result Query: %v, %v", rows, err)
	}
	// Re-executing definitions fails cleanly.
	def, _ := db.Prepare(`create table once (a int)`)
	if _, err := def.Exec(); err != nil {
		t.Fatal(err)
	}
	if _, err := def.Exec(); err == nil {
		t.Error("duplicate definition re-exec succeeded")
	}
}
