// Package sopr is a relational database engine with the set-oriented
// production rules facility of Widom & Finkelstein, "Set-Oriented
// Production Rules in Relational Database Systems" (SIGMOD 1990).
//
// A DB executes SQL scripts. Consecutive data manipulation statements form
// one operation block — one externally-generated transition, hence one
// transaction: production rules are considered and executed just before the
// transaction commits, exactly per the paper's Section 4 semantics and
// Figure 1 algorithm.
//
//	db := sopr.Open()
//	db.MustExec(`create table emp (name varchar, emp_no int, salary float, dept_no int)`)
//	db.MustExec(`create table dept (dept_no int, mgr_no int)`)
//	db.MustExec(`
//	    create rule cascade when deleted from dept
//	    then delete from emp where dept_no in (select dept_no from deleted dept)
//	    end`)
//	db.MustExec(`delete from dept where dept_no = 2`) // employees cascade
//
// Rule definitions support the paper's full syntax: disjunctive transition
// predicates (INSERTED INTO t / DELETED FROM t / UPDATED t[.c]), SQL
// conditions over the current state and the transition tables (inserted t,
// deleted t, old/new updated t[.c]), operation-block actions, ROLLBACK
// actions, priorities (CREATE RULE PRIORITY a BEFORE b), plus the paper's
// Section 5 extensions: select triggering, external procedure actions
// (THEN CALL proc), and PROCESS RULES triggering points.
package sopr

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"sopr/internal/engine"
	"sopr/internal/exec"
	"sopr/internal/rules"
	"sopr/internal/sqlparse"
	"sopr/internal/value"
	"sopr/internal/wal"
)

// Strategy selects the tie-break among equal-priority triggered rules
// (Section 4.4 of the paper).
type Strategy int

// Rule-selection strategies.
const (
	// LeastRecentlyConsidered is the default: deterministic round-robin
	// among equal-priority rules.
	LeastRecentlyConsidered Strategy = iota
	// MostRecentlyConsidered yields depth-first cascades.
	MostRecentlyConsidered
	// NameOrder is a fully static order.
	NameOrder
)

// TriggerScope selects which composite transition a rule is evaluated
// against (paper Section 4.2 and footnote 8).
type TriggerScope int

// Trigger scopes.
const (
	// SinceAction is the paper's semantics: the composite effect since the
	// rule's action last executed (or transaction start).
	SinceAction TriggerScope = iota
	// SinceConsidered restarts the window whenever the rule is considered.
	SinceConsidered
	// SinceTriggered restarts the window at each transition that by itself
	// triggers the rule (the WF89b semantics).
	SinceTriggered
)

// config gathers everything Open and OpenDurable can be configured with:
// the engine behavior plus the durability settings (see durability.go).
type config struct {
	eng engine.Config
	dur durConfig
}

// Option configures a DB at Open or OpenDurable.
type Option func(*config)

// WithMaxRuleTransitions caps rule-generated transitions per transaction
// (the footnote 7 runaway guard; default 10000).
func WithMaxRuleTransitions(n int) Option {
	return func(c *config) { c.eng.MaxRuleTransitions = n }
}

// WithStrategy sets the rule-selection tie-break.
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.eng.Strategy = rules.Strategy(s) }
}

// WithDefaultScope sets the triggering scope given to new rules.
func WithDefaultScope(s TriggerScope) Option {
	return func(c *config) { c.eng.DefaultScope = rules.TriggerScope(s) }
}

// WithSelectTriggers enables the Section 5.1 extension: SELECT statements
// join operation blocks, effects gain an S component, and SELECTED
// transition predicates become available.
func WithSelectTriggers() Option {
	return func(c *config) { c.eng.EnableSelectTriggers = true }
}

// WithRuleTimeout bounds wall-clock rule-processing time per transaction
// (the footnote 7 timeout mechanism); exceeding it rolls the transaction
// back with an error.
func WithRuleTimeout(d time.Duration) Option {
	return func(c *config) { c.eng.RuleTimeout = d }
}

// DB is a database instance with the production rules facility. It is not
// safe for concurrent use; the paper's model of system execution is a
// single stream of operation blocks (Section 2.1).
type DB struct {
	eng *engine.Engine
	// walLog and recovery are set by OpenDurable (durability.go); walLog is
	// nil for a plain in-memory Open.
	walLog    *wal.Log
	recovery  RecoveryInfo
	recovered bool
}

// Open creates an empty in-memory database. For a database that survives
// restarts, use OpenDurable.
func Open(opts ...Option) *DB {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return &DB{eng: engine.New(cfg.eng)}
}

// ParseError reports a script syntax error with its 1-based position; Exec
// and Query return it (wrapped in the error chain) whenever the script fails
// to parse, so shells and servers can point at the offending line.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("syntax error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

// wrapErr converts internal syntax errors to the public ParseError.
func wrapErr(err error) error {
	var se *sqlparse.SyntaxError
	if errors.As(err, &se) {
		return &ParseError{Line: se.Line, Col: se.Col, Msg: se.Msg}
	}
	return err
}

// Rows is a query result: column names and data rows. Cells are nil (SQL
// NULL), int64, float64, string, or bool.
type Rows struct {
	Columns []string
	Data    [][]any
	table   string // pre-rendered table form
}

// String renders the rows as an aligned text table.
func (r *Rows) String() string { return r.table }

// NewRows builds a Rows from raw columns and cells (nil, int64, float64,
// string, or bool) and renders its table form. The network client uses it to
// rebuild results received over the wire; the output matches what the
// engine produces for the same data.
func NewRows(columns []string, data [][]any) *Rows {
	r := &Rows{Columns: columns, Data: data}
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(data))
	for ri, row := range data {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := cellString(v)
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	for _, row := range cells {
		b.WriteByte('\n')
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
	}
	r.table = b.String()
	return r
}

// cellString renders one raw cell the way the engine's table printer does.
func cellString(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return value.NewInt(x).String()
	case float64:
		return value.NewFloat(x).String()
	case string:
		return x // strings print unquoted in tables
	case bool:
		return value.NewBool(x).String()
	default:
		return fmt.Sprintf("%v", x)
	}
}

// wrapResult converts an executor result into public Rows. The output is
// a full snapshot, sharing no memory with live storage: each Data row is
// freshly allocated here and each cell is an immutable scalar copied out
// of a value.Value (the executor itself already builds result rows fresh
// per query — see exec.evalPlainQuery — and storage updates swap whole
// row slices rather than mutating them in place). A later or concurrent
// Exec therefore can never change Rows a caller is holding; the
// TestRowsSnapshotImmutable regression test pins this.
func wrapResult(res *exec.Result) *Rows {
	if res == nil {
		return nil
	}
	out := &Rows{Columns: res.Columns, table: res.String()}
	for _, row := range res.Rows {
		vals := make([]any, len(row))
		for i, v := range row {
			switch v.Kind() {
			case value.KindNull:
				vals[i] = nil
			case value.KindInt:
				vals[i] = v.Int()
			case value.KindFloat:
				vals[i] = v.Float()
			case value.KindString:
				vals[i] = v.Str()
			case value.KindBool:
				vals[i] = v.Bool()
			}
		}
		out.Data = append(out.Data, vals)
	}
	return out
}

// Firing records one rule action execution.
type Firing struct {
	Rule   string
	Effect string // summary of the created transition, e.g. "[I:0 D:2 U:0 S:0]"
}

// Result summarizes the transactions run by one Exec call.
type Result struct {
	// RolledBack is set when a rule with a ROLLBACK action fired; the
	// transaction's changes were undone (Section 4.2).
	RolledBack   bool
	RollbackRule string
	// Firings lists rule action executions, in order.
	Firings []Firing
	// Results holds the result sets of SELECT statements, in order.
	Results []*Rows
	// LSN is the durable log position after this call on a durable
	// database (0 in-memory or over a non-durable server). Replication
	// clients carry it as a read-your-writes token: a replica read with
	// this MinLSN sees at least the state this call produced.
	LSN uint64
	// Epoch is the serving node's promotion epoch (0 before any failover,
	// and always 0 on a plain local database).
	Epoch uint64
	// Synced reports that the configured number of synchronous followers
	// acknowledged this commit before it was acknowledged to the caller
	// (false in async replication mode or after a degraded sync wait).
	Synced bool
}

// Exec parses and executes a script: DDL, rule definitions, queries, and
// operation blocks. Consecutive DML statements form one transaction. On a
// durable database, Exec returns only after the transaction's commit
// record is fsynced (per the fsync policy): an acknowledged commit is
// durable.
func (db *DB) Exec(src string) (*Result, error) {
	return db.finish(db.execNoWait(src))
}

// ExecBatch executes a batch of data-manipulation statements as ONE
// operation block — one externally-generated transition, one transaction,
// one commit record, one durable fsync — regardless of how many
// statements the batch carries. This is the paper's set-oriented
// submission path: rule processing is decoupled from statement boundaries
// (Section 5.3), so the batch behaves exactly like the same statements
// submitted consecutively in a single Exec script. SELECTs evaluate
// inside the block and observe its preceding writes; definition
// statements are rejected (they execute between transactions — use Exec).
func (db *DB) ExecBatch(stmts []string) (*Result, error) {
	return db.finish(db.execBatchNoWait(stmts))
}

// execNoWait runs the script without waiting for commit durability. The
// returned lsn is the newest commit record the script appended (0 if
// nothing committed, or in-memory).
func (db *DB) execNoWait(src string) (*Result, uint64, error) {
	txn, err := db.eng.Exec(src)
	res := wrapTxn(txn)
	var lsn uint64
	if txn != nil {
		lsn = txn.LastLSN
	}
	return res, lsn, wrapErr(err)
}

// execBatchNoWait is execNoWait for a batch block.
func (db *DB) execBatchNoWait(stmts []string) (*Result, uint64, error) {
	txn, err := db.eng.ExecBatch(stmts)
	res := wrapTxn(txn)
	var lsn uint64
	if txn != nil {
		lsn = txn.LastLSN
	}
	return res, lsn, wrapErr(err)
}

// finish completes an exec after the engine pass — and, crucially, after
// the caller released any write lock: it parks on the write-ahead log's
// group commit for the transaction's record (concurrent committers share
// one fsync there) and stamps the read-your-writes LSN token. A
// durability failure outranks nothing: if the engine pass itself errored,
// that error is returned and the sticky log error will surface on the
// next write.
func (db *DB) finish(res *Result, lsn uint64, err error) (*Result, error) {
	if werr := db.waitDurable(lsn); werr != nil && err == nil {
		err = werr
	}
	if res != nil && db.walLog != nil {
		res.LSN = db.CurrentLSN()
	}
	return res, err
}

// waitDurable parks until the given commit record is fsynced — the group
// commit point. A no-op in-memory, when nothing committed, or under the
// interval/never fsync policies (their durability window is the caller's
// explicit choice).
func (db *DB) waitDurable(lsn uint64) error {
	if db.walLog == nil || lsn == 0 {
		return nil
	}
	return db.walLog.WaitDurable(lsn)
}

func wrapTxn(txn *engine.TxnResult) *Result {
	if txn == nil {
		return nil
	}
	res := &Result{RolledBack: txn.RolledBack, RollbackRule: txn.RollbackRule}
	for _, f := range txn.Firings {
		res.Firings = append(res.Firings, Firing{Rule: f.Rule, Effect: f.Effect})
	}
	for _, q := range txn.Queries {
		res.Results = append(res.Results, wrapResult(q))
	}
	return res
}

// MustExec is Exec that panics on error — for examples and tests.
func (db *DB) MustExec(src string) *Result {
	res, err := db.Exec(src)
	if err != nil {
		panic(fmt.Sprintf("sopr: %v", err))
	}
	return res
}

// Query evaluates a single SELECT statement outside any transaction. An
// EXPLAIN statement is accepted too: it returns the executor's chosen
// plan (access paths, join order, cost estimates) as a one-column result
// without executing the statement.
func (db *DB) Query(src string) (*Rows, error) {
	res, err := db.eng.QueryString(src)
	if err != nil {
		return nil, wrapErr(err)
	}
	return wrapResult(res), nil
}

// MustQuery is Query that panics on error.
func (db *DB) MustQuery(src string) *Rows {
	r, err := db.Query(src)
	if err != nil {
		panic(fmt.Sprintf("sopr: %v", err))
	}
	return r
}

// ProcContext is passed to external procedures (Section 5.2). DML executed
// through it becomes part of the rule-generated transition; queries see the
// triggering rule's transition tables.
type ProcContext struct {
	inner *engine.ProcContext
}

// RuleName reports the rule whose action invoked the procedure.
func (c *ProcContext) RuleName() string { return c.inner.RuleName }

// Exec runs data manipulation operations inside the rule's transition.
func (c *ProcContext) Exec(src string) error { return c.inner.Exec(src) }

// Query evaluates a SELECT with the rule's transition tables in scope.
func (c *ProcContext) Query(src string) (*Rows, error) {
	res, err := c.inner.Query(src)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// ProcFunc is an external procedure callable from rule actions via
// `THEN CALL name`.
type ProcFunc func(*ProcContext) error

// RegisterProcedure installs an external procedure. It must be registered
// before any rule referencing it is defined.
func (db *DB) RegisterProcedure(name string, fn ProcFunc) {
	db.eng.RegisterProcedure(name, func(inner *engine.ProcContext) error {
		return fn(&ProcContext{inner: inner})
	})
}

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds, mirroring the steps of the paper's Figure 1 algorithm.
const (
	TraceExternalTransition TraceKind = iota
	TraceRuleConsidered
	TraceRuleFired
	TraceRollback
	TraceCommit
)

// TraceEvent describes one step of rule processing.
type TraceEvent struct {
	Kind     TraceKind
	Rule     string
	CondHeld bool
	Effect   string
}

// OnTrace installs a trace hook receiving rule-processing events; pass nil
// to remove it. The swap is atomic, so installing or removing a hook can
// never be observed half-done; events are emitted only from the write
// path (Exec and friends) — queries never trace.
func (db *DB) OnTrace(fn func(TraceEvent)) {
	if fn == nil {
		db.eng.SetTrace(nil)
		return
	}
	db.eng.SetTrace(func(ev engine.TraceEvent) {
		fn(TraceEvent{
			Kind:     TraceKind(ev.Kind),
			Rule:     ev.Rule,
			CondHeld: ev.CondHeld,
			Effect:   ev.Effect,
		})
	})
}

// Stats are cumulative engine counters.
type Stats struct {
	Committed           int64 // transactions committed
	RolledBack          int64 // transactions rolled back (rules, errors, runaway guard)
	ExternalTransitions int64 // externally-generated transitions executed
	RuleConsiderations  int64 // rule condition evaluations
	RuleFirings         int64 // rule action executions
	IndexLookups        int64 // selections served from a secondary index
	HeapScans           int64 // full heap table scans
	WALAppends          int64 // records appended to the write-ahead log
	WALBytes            int64 // bytes appended to the write-ahead log
	RecoveredRecords    int64 // log records replayed during crash recovery
	Checkpoints         int64 // checkpoints written
	// Group-commit counters (durable fsync=always path): GroupCommits is
	// the number of leader fsyncs issued from the commit queue,
	// GroupedTxns the number of committers those fsyncs acknowledged, and
	// TxnsPerSync their ratio — the fsync amortization factor (1.0 means
	// every committer synced alone; >1 means fsyncs were shared).
	GroupCommits int64
	GroupedTxns  int64
	TxnsPerSync  float64
	// Planner counters: query blocks executed through the cost-based join
	// planner, and planned index probes that fell back to a heap scan at
	// lookup time (the 2^53 integer-keyspace fallback).
	PlannedQueries     int64
	PlanProbeFallbacks int64
}

// Stats returns a snapshot of the database's cumulative counters.
func (db *DB) Stats() Stats {
	s := db.eng.Stats()
	out := Stats{
		Committed:           s.Committed,
		RolledBack:          s.RolledBack,
		ExternalTransitions: s.ExternalTransitions,
		RuleConsiderations:  s.RuleConsiderations,
		RuleFirings:         s.RuleFirings,
		IndexLookups:        s.IndexLookups,
		HeapScans:           s.HeapScans,
		WALAppends:          s.WALAppends,
		WALBytes:            s.WALBytes,
		RecoveredRecords:    s.RecoveredRecords,
		Checkpoints:         s.Checkpoints,
		GroupCommits:        s.WALGroupCommits,
		GroupedTxns:         s.WALGroupedTxns,
		PlannedQueries:      s.PlannedQueries,
		PlanProbeFallbacks:  s.PlanProbeFallbacks,
	}
	if out.GroupCommits > 0 {
		out.TxnsPerSync = float64(out.GroupedTxns) / float64(out.GroupCommits)
	}
	return out
}

// Rules returns the defined rule names in definition order.
func (db *DB) Rules() []string { return db.eng.Rules() }

// Tables returns the defined table names, sorted. Reads the published
// snapshot's catalog, so it is safe concurrent with a writer.
func (db *DB) Tables() []string { return db.eng.Snapshot().Catalog().Names() }

// SetRuleScope overrides one rule's triggering scope (footnote 8).
func (db *DB) SetRuleScope(rule string, scope TriggerScope) error {
	return db.eng.SetRuleScope(rule, rules.TriggerScope(scope))
}
