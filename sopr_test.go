package sopr

import (
	"errors"
	"strings"
	"testing"
)

func openPaperDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db := Open(opts...)
	if _, err := db.Exec(`
		create table emp (name varchar, emp_no int not null, salary float, dept_no int);
		create table dept (dept_no int, mgr_no int);
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenExecQuery(t *testing.T) {
	db := openPaperDB(t)
	db.MustExec(`insert into emp values ('jane', 1, 100, 1), ('sue', 2, nullif(1,1), 2)`)
	rows := db.MustQuery(`select name, salary, emp_no, name = 'jane' from emp order by emp_no`)
	if len(rows.Data) != 2 {
		t.Fatalf("rows: %+v", rows.Data)
	}
	if rows.Data[0][0] != "jane" || rows.Data[0][1] != 100.0 || rows.Data[0][2] != int64(1) || rows.Data[0][3] != true {
		t.Errorf("typed cells: %#v", rows.Data[0])
	}
	if rows.Data[1][1] != nil {
		t.Errorf("NULL cell: %#v", rows.Data[1][1])
	}
	if !strings.Contains(rows.String(), "jane") {
		t.Error("table rendering")
	}
	if got := db.Tables(); len(got) != 2 || got[0] != "dept" || got[1] != "emp" {
		t.Errorf("Tables: %v", got)
	}
}

func TestRuleLifecycle(t *testing.T) {
	db := openPaperDB(t)
	db.MustExec(`
		create rule cascade when deleted from dept
		then delete from emp where dept_no in (select dept_no from deleted dept)
		end
	`)
	if got := db.Rules(); len(got) != 1 || got[0] != "cascade" {
		t.Fatalf("Rules: %v", got)
	}
	db.MustExec(`insert into emp values ('a', 1, 10, 1); insert into dept values (1, 1)`)
	res := db.MustExec(`delete from dept`)
	if len(res.Firings) != 1 || res.Firings[0].Rule != "cascade" {
		t.Fatalf("firings: %+v", res.Firings)
	}
	rows := db.MustQuery(`select count(*) from emp`)
	if rows.Data[0][0] != int64(0) {
		t.Errorf("cascade failed: %v", rows.Data)
	}
	db.MustExec(`drop rule cascade`)
	if len(db.Rules()) != 0 {
		t.Error("drop rule failed")
	}
}

func TestRollbackSurfaced(t *testing.T) {
	db := openPaperDB(t)
	db.MustExec(`
		create rule guard when inserted into emp
		if exists (select * from inserted emp where salary < 0)
		then rollback
	`)
	res := db.MustExec(`insert into emp values ('bad', 1, -5, 1)`)
	if !res.RolledBack || res.RollbackRule != "guard" {
		t.Fatalf("result: %+v", res)
	}
	if db.MustQuery(`select count(*) from emp`).Data[0][0] != int64(0) {
		t.Error("rolled-back insert persisted")
	}
}

func TestErrorsPropagate(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`select * from nosuch`); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := db.Query(`not sql at all`); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := db.Query(`insert into t values (1)`); err == nil {
		t.Error("Query accepted non-SELECT")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustExec did not panic")
			}
		}()
		db.MustExec(`select * from nosuch`)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustQuery did not panic")
			}
		}()
		db.MustQuery(`select * from nosuch`)
	}()
	if err := db.SetRuleScope("nosuch", SinceTriggered); err == nil {
		t.Error("SetRuleScope on missing rule accepted")
	}
}

func TestOptions(t *testing.T) {
	db := openPaperDB(t, WithMaxRuleTransitions(3), WithStrategy(NameOrder))
	db.MustExec(`
		create rule diverge when updated emp.salary
		then update emp set salary = salary + 1
		end
	`)
	db.MustExec(`insert into emp values ('a', 1, 0, 1)`)
	_, err := db.Exec(`update emp set salary = 1`)
	if err == nil {
		t.Fatal("runaway not capped")
	}
	if !strings.Contains(err.Error(), "transition limit") {
		t.Errorf("error: %v", err)
	}
	// Transaction rolled back.
	if db.MustQuery(`select salary from emp`).Data[0][0] != 0.0 {
		t.Error("runaway txn not rolled back")
	}
}

func TestSelectTriggersOption(t *testing.T) {
	db := openPaperDB(t, WithSelectTriggers())
	db.MustExec(`create table audit (n int)`)
	db.MustExec(`
		create rule watch when selected emp
		then insert into audit values (1)
		end
	`)
	db.MustExec(`insert into emp values ('a', 1, 10, 1)`)
	res := db.MustExec(`select * from emp`)
	if len(res.Results) != 1 {
		t.Fatalf("results: %+v", res.Results)
	}
	if db.MustQuery(`select count(*) from audit`).Data[0][0] != int64(1) {
		t.Error("select trigger did not fire")
	}
	// Without the option the rule definition is rejected.
	db2 := openPaperDB(t)
	if _, err := db2.Exec(`create rule watch when selected emp then delete from emp end`); err == nil {
		t.Error("selected predicate accepted without option")
	}
}

func TestExternalProcedure(t *testing.T) {
	db := openPaperDB(t)
	var gotRule string
	db.RegisterProcedure("notify", func(ctx *ProcContext) error {
		gotRule = ctx.RuleName()
		rows, err := ctx.Query(`select count(*) from inserted emp`)
		if err != nil {
			return err
		}
		if rows.Data[0][0] != int64(2) {
			t.Errorf("proc query: %v", rows.Data)
		}
		return ctx.Exec(`insert into dept values (1, 1)`)
	})
	db.MustExec(`create rule r when inserted into emp then call notify end`)
	db.MustExec(`insert into emp values ('a', 1, 1, 1), ('b', 2, 1, 1)`)
	if gotRule != "r" {
		t.Errorf("RuleName: %q", gotRule)
	}
	if db.MustQuery(`select count(*) from dept`).Data[0][0] != int64(1) {
		t.Error("proc DML missing")
	}
	// Procedure errors abort the transaction.
	db.RegisterProcedure("boom", func(ctx *ProcContext) error { return errors.New("boom") })
	db.MustExec(`create rule rb when deleted from emp then call boom end`)
	if _, err := db.Exec(`delete from emp`); err == nil {
		t.Error("proc error swallowed")
	}
	if db.MustQuery(`select count(*) from emp`).Data[0][0] != int64(2) {
		t.Error("failed txn not rolled back")
	}
}

func TestOnTrace(t *testing.T) {
	db := openPaperDB(t)
	db.MustExec(`create rule r when inserted into emp then insert into dept values (1,1) end`)
	var events []TraceEvent
	db.OnTrace(func(ev TraceEvent) { events = append(events, ev) })
	db.MustExec(`insert into emp values ('a', 1, 1, 1)`)
	var fired, committed bool
	for _, ev := range events {
		if ev.Kind == TraceRuleFired && ev.Rule == "r" {
			fired = true
		}
		if ev.Kind == TraceCommit {
			committed = true
		}
	}
	if !fired || !committed {
		t.Errorf("trace events: %+v", events)
	}
	db.OnTrace(nil)
	n := len(events)
	db.MustExec(`insert into emp values ('b', 2, 1, 1)`)
	if len(events) != n {
		t.Error("trace hook not removed")
	}
}

func TestScopesViaPublicAPI(t *testing.T) {
	db := openPaperDB(t, WithDefaultScope(SinceAction))
	db.MustExec(`create rule r when inserted into emp then insert into dept values (1,1) end`)
	if err := db.SetRuleScope("r", SinceConsidered); err != nil {
		t.Fatal(err)
	}
	if err := db.SetRuleScope("r", SinceTriggered); err != nil {
		t.Fatal(err)
	}
}

// TestReadmeQuickstart keeps the README's quickstart snippet honest.
func TestReadmeQuickstart(t *testing.T) {
	db := Open()
	db.MustExec(`create table emp (name varchar, emp_no int, salary float, dept_no int)`)
	db.MustExec(`create table dept (dept_no int, mgr_no int)`)
	db.MustExec(`
	    create rule cascade when deleted from dept
	    then delete from emp where dept_no in (select dept_no from deleted dept)
	    end`)
	db.MustExec(`insert into emp values ('e1', 1, 50, 2); insert into dept values (2, 1)`)
	db.MustExec(`delete from dept where dept_no = 2`)
	if db.MustQuery(`select count(*) from emp`).Data[0][0] != int64(0) {
		t.Error("quickstart cascade failed")
	}
}
