package sopr

import "testing"

func TestStats(t *testing.T) {
	db := openPaperDB(t)
	// DDL runs outside transactions: all counters start at zero.
	if s := db.Stats(); s != (Stats{}) {
		t.Fatalf("fresh stats: %+v", s)
	}
	base := db.Stats()

	db.MustExec(`
		create rule cascade when deleted from dept
		then delete from emp where dept_no in (select dept_no from deleted dept)
		end;
		create rule guard when inserted into emp
		if exists (select * from inserted emp where salary < 0)
		then rollback
	`)
	db.MustExec(`insert into emp values ('a', 1, 10, 1); insert into dept values (1, 1)`)
	s := db.Stats()
	if s.Committed != base.Committed+1 {
		t.Errorf("Committed: %d, want %d", s.Committed, base.Committed+1)
	}
	if s.ExternalTransitions != base.ExternalTransitions+1 {
		t.Errorf("ExternalTransitions: %d", s.ExternalTransitions)
	}
	// guard was considered (condition false), cascade never triggered.
	if s.RuleConsiderations != base.RuleConsiderations+1 {
		t.Errorf("RuleConsiderations: %d, want +1", s.RuleConsiderations-base.RuleConsiderations)
	}
	if s.RuleFirings != base.RuleFirings {
		t.Errorf("RuleFirings: %d", s.RuleFirings)
	}

	// Cascade fires once.
	db.MustExec(`delete from dept`)
	s2 := db.Stats()
	if s2.RuleFirings != s.RuleFirings+1 {
		t.Errorf("RuleFirings after cascade: %d", s2.RuleFirings)
	}

	// Rollback counted.
	db.MustExec(`insert into emp values ('bad', 9, -1, 1)`)
	s3 := db.Stats()
	if s3.RolledBack != s2.RolledBack+1 {
		t.Errorf("RolledBack: %d", s3.RolledBack)
	}
	if s3.Committed != s2.Committed {
		t.Errorf("rolled-back txn counted as committed")
	}

	// Errors count as rollbacks too.
	db.Exec(`insert into emp values (1)`) //nolint:errcheck
	if s4 := db.Stats(); s4.RolledBack != s3.RolledBack+1 {
		t.Errorf("error rollback not counted: %+v", s4)
	}
}
